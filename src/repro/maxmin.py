"""Generic max-min fair rate allocation.

Used twice in this package: the EyeQ-style hose coordination inside the
pacer (every flow crosses its sender's and receiver's hose "links") and the
flow-level simulator's ideal-TCP bandwidth sharing (every flow crosses the
tree links on its path).

:func:`max_min_fair` implements progressive filling in its *water-level*
form: every unfrozen flow shares one common rate ``W``; a link with
``count`` unfrozen crossings and ``used`` bytes/s already frozen onto it
saturates at ``W = (capacity - used) / count``, and a flow with finite
demand ``d`` freezes at ``W = d``.  Both event families live in lazy
min-heaps (link entries are version-stamped and invalidated whenever a
freeze changes the link's count), and a precomputed link -> flow incidence
list lets a saturating link freeze exactly the flows that cross it.  Each
flow is frozen once, so the total cost is O(sum of path lengths · log)
instead of the O(#links · #flows) per *round* of the textbook loop, which
is preserved below as :func:`max_min_fair_reference` and asserted
equivalent by ``tests/test_maxmin.py`` and
``benchmarks/bench_hotpaths.py``.

Saturation epsilon: a link counts as saturated when its remaining room is
within ``1e-9 · capacity`` (relative).  The seed used an absolute
``room <= 1e-9``, which misfires for byte-scale capacities -- a fully
allocated 1 Gbps link retains ~1e-7 bytes/s of float residue, was never
detected as saturated, and the defensive "freeze everything" fallback then
pinned flows on *other* links below their fair share (see
``tests/test_maxmin.py::test_gbps_scale_saturation_regression``).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

#: A link is saturated when its room falls within this fraction of its
#: capacity (relative epsilon; see module docstring).
_SAT_EPS = 1e-9
#: A flow is demand-frozen when its rate is within this *fraction* of
#: its demand (floored at 1 byte/s so zero-demand flows still freeze).
_DEMAND_EPS = 1e-12


def _validate(
    flows: Mapping[Hashable, Tuple[Sequence[Hashable], float]],
    capacities: Mapping[Hashable, float],
    rates: Dict[Hashable, float],
) -> Dict[Hashable, Tuple[Sequence[Hashable], float]]:
    """Shared input validation; returns the link-crossing (active) flows
    and pre-fills ``rates`` for the trivial ones."""
    active: Dict[Hashable, Tuple[Sequence[Hashable], float]] = {}
    for flow_id, (links, demand) in flows.items():
        if demand < 0:
            raise ValueError(f"flow {flow_id!r} has negative demand")
        if not links:
            if math.isinf(demand):
                raise ValueError(
                    f"flow {flow_id!r} is elastic but crosses no links")
            rates[flow_id] = demand
        elif demand == 0:
            rates[flow_id] = 0.0
        else:
            for link in links:
                if link not in capacities:
                    raise KeyError(f"flow {flow_id!r} crosses unknown "
                                   f"link {link!r}")
            active[flow_id] = (links, demand)
            rates[flow_id] = 0.0
    return active


def max_min_fair(
    flows: Mapping[Hashable, Tuple[Sequence[Hashable], float]],
    capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Allocate max-min fair rates.

    Args:
        flows: flow id -> (link ids it crosses, demand); a demand of
            ``math.inf`` means elastic (takes whatever it can get).
        capacities: link id -> capacity.  Every link referenced by a flow
            must be present.

    Returns:
        flow id -> allocated rate.  Flows crossing no links get their full
        demand (an infinite demand on a linkless flow is an error).
    """
    rates: Dict[Hashable, float] = {}
    active = _validate(flows, capacities, rates)

    # Link -> flow incidence (with multiplicity: a flow crossing a link
    # twice consumes two shares of it, as in the reference loop).
    incidence: Dict[Hashable, List[Hashable]] = {}
    count: Dict[Hashable, int] = {}
    used: Dict[Hashable, float] = {}
    for flow_id, (links, _) in active.items():
        for link in links:
            if link in count:
                count[link] += 1
                incidence[link].append(flow_id)
            else:
                count[link] = 1
                used[link] = 0.0
                incidence[link] = [flow_id]

    version: Dict[Hashable, int] = dict.fromkeys(count, 0)
    link_heap: List[Tuple[float, int, Hashable]] = []
    for link, crossings in count.items():
        capacity = capacities[link]
        if math.isfinite(capacity):
            heappush(link_heap, (capacity / crossings, 0, link))
    demand_heap: List[Tuple[float, Hashable]] = [
        (demand, flow_id) for flow_id, (_, demand) in active.items()
        if math.isfinite(demand)]
    demand_heap.sort()

    unfrozen = set(active)

    def freeze(flow_id: Hashable, rate: float) -> None:
        rates[flow_id] = rate
        unfrozen.discard(flow_id)
        for link in active[flow_id][0]:
            count[link] -= 1
            used[link] += rate
            version[link] += 1
            crossings = count[link]
            if crossings > 0:
                capacity = capacities[link]
                if math.isfinite(capacity):
                    heappush(link_heap,
                             ((capacity - used[link]) / crossings,
                              version[link], link))

    water = 0.0
    while unfrozen:
        while demand_heap and demand_heap[0][1] not in unfrozen:
            heappop(demand_heap)
        while link_heap:
            _, stamp, link = link_heap[0]
            if stamp != version[link] or count[link] <= 0:
                heappop(link_heap)
            else:
                break
        next_w = demand_heap[0][0] if demand_heap else math.inf
        from_link = False
        if link_heap and link_heap[0][0] < next_w:
            next_w = link_heap[0][0]
            from_link = True
        if not math.isfinite(next_w):
            raise RuntimeError("all active flows are elastic and "
                               "unconstrained; allocation diverges")
        # Water never recedes: a freeze can nudge a recomputed saturation
        # level a float ulp below the current level.
        if next_w > water:
            water = next_w
        if from_link:
            _, _, link = heappop(link_heap)
            # Bulk-freeze every unfrozen flow crossing the saturated link
            # at the current water level.
            for flow_id in incidence[link]:
                if flow_id in unfrozen:
                    freeze(flow_id, water)
        else:
            _, flow_id = heappop(demand_heap)
            freeze(flow_id, water)
    return rates


def max_min_fair_reference(
    flows: Mapping[Hashable, Tuple[Sequence[Hashable], float]],
    capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Textbook progressive filling, kept as a cross-check oracle.

    Raises the rate of every unfrozen flow in lockstep until either a flow
    hits its demand (freeze it) or a link saturates (freeze every flow
    crossing it), then repeats with the remaining capacity.  Runs in
    O(#links · #flows) per round; :func:`max_min_fair` produces the same
    allocation (to float tolerance) in near-linear time.
    """
    rates: Dict[Hashable, float] = {}
    active = dict(_validate(flows, capacities, rates))

    residual = dict(capacities)
    # Number of active flows crossing each link.
    load: Dict[Hashable, int] = {}
    for links, _ in active.values():
        for link in links:
            load[link] = load.get(link, 0) + 1

    while active:
        # The common increment is limited by the tightest link fair share
        # and the smallest remaining demand.
        increment = math.inf
        for flow_id, (links, demand) in active.items():
            remaining = demand - rates[flow_id]
            if remaining < increment:
                increment = remaining
        for link, flow_count in load.items():
            if flow_count > 0:
                share = residual[link] / flow_count
                if share < increment:
                    increment = share
        if not math.isfinite(increment):
            raise RuntimeError("all active flows are elastic and "
                               "unconstrained; allocation diverges")
        increment = max(increment, 0.0)

        frozen: List[Hashable] = []
        for flow_id, (links, demand) in active.items():
            rates[flow_id] += increment
            for link in links:
                residual[link] -= increment
        saturated = {
            link for link, room in residual.items()
            if load.get(link, 0) > 0 and math.isfinite(capacities[link])
            and room <= _SAT_EPS * capacities[link]}
        for flow_id, (links, demand) in active.items():
            # The demand test needs a relative epsilon for the same
            # reason the saturation test does: summing increments toward
            # a byte-scale demand accumulates error far above 1e-12, and
            # a missed freeze drops into the freeze-everything fallback.
            if (math.isfinite(demand) and rates[flow_id]
                    >= demand - _DEMAND_EPS * max(demand, 1.0)):
                frozen.append(flow_id)
            elif any(link in saturated for link in links):
                frozen.append(flow_id)
        if not frozen:
            # Numerical safety: freeze everything touching the tightest
            # link rather than looping forever.
            frozen = list(active)
        for flow_id in frozen:
            links, _ = active.pop(flow_id)
            for link in links:
                load[link] -= 1
    return rates


class IncrementalMaxMin:
    """Persistent max-min allocation under flow arrivals and departures.

    Max-min fairness decomposes over connected components of the
    flow-link bipartite graph: flows that share no link (directly or
    through a chain of other flows) never influence each other's rates.
    This class keeps the link -> flow incidence map alive between events;
    when flows arrive, finish, or a link capacity changes, only the
    affected links are marked *dirty*, and :meth:`recompute` re-runs
    :func:`max_min_fair` on the closure of dirty links alone -- the rest
    of the allocation is untouched.  On a large topology where each event
    perturbs one small component this turns an O(total flows) recompute
    into one proportional to the component size.

    Equivalence contract: after every :meth:`recompute`, :meth:`rates`
    equals ``max_min_fair(flows, capacities)`` over the full current flow
    set.  Sub-problems are handed to :func:`max_min_fair` with the flows
    in their global insertion order, so freeze ordering -- and therefore
    the float-level result -- matches a from-scratch solve restricted to
    the same component (asserted by ``tests/test_maxmin_incremental.py``
    and the campaign bit-identity gate).

    Not thread-safe; the fluid simulator drives one instance per sharing
    domain from its single-threaded event loop.
    """

    __slots__ = ("_capacities", "_flows", "_order", "_next_order",
                 "_incidence", "_rates", "_dirty_links", "_dirty_flows",
                 "recompute_count", "affected_flow_count")

    def __init__(
            self,
            capacities: Optional[Mapping[Hashable, float]] = None) -> None:
        self._capacities: Dict[Hashable, float] = \
            dict(capacities) if capacities else {}
        #: flow id -> (links, demand); insertion-ordered, mirrored by
        #: ``_order`` so sub-problems can be rebuilt in global order.
        self._flows: Dict[Hashable, Tuple[Tuple[Hashable, ...], float]] = {}
        self._order: Dict[Hashable, int] = {}
        self._next_order = 0
        #: link -> ordered set of flow ids crossing it (multiplicity is
        #: carried by the flow's links tuple, not repeated here).
        self._incidence: Dict[Hashable, Dict[Hashable, None]] = {}
        self._rates: Dict[Hashable, float] = {}
        self._dirty_links: Dict[Hashable, None] = {}
        self._dirty_flows: Dict[Hashable, None] = {}
        #: Instrumentation for benchmarks: recomputes performed and the
        #: cumulative number of flows re-solved across them.
        self.recompute_count = 0
        self.affected_flow_count = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def set_capacity(self, link: Hashable, capacity: float) -> None:
        """Register a link or update its capacity.

        A changed capacity dirties the link (and hence its component);
        registering an unused link or re-setting the same value is free.
        """
        old = self._capacities.get(link)
        if old is not None and old == capacity:
            return
        self._capacities[link] = capacity
        if self._incidence.get(link):
            self._dirty_links[link] = None

    def add_flow(self, flow_id: Hashable, links: Sequence[Hashable],
                 demand: float) -> None:
        """Add a flow; rates refresh on the next :meth:`recompute`.

        Validation matches :func:`max_min_fair`: negative demand and
        elastic linkless flows raise ``ValueError``, unknown links raise
        ``KeyError``.
        """
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id!r} already present")
        if demand < 0:
            raise ValueError(f"flow {flow_id!r} has negative demand")
        links = tuple(links)
        if not links and math.isinf(demand):
            raise ValueError(
                f"flow {flow_id!r} is elastic but crosses no links")
        for link in links:
            if link not in self._capacities:
                raise KeyError(f"flow {flow_id!r} crosses unknown "
                               f"link {link!r}")
        self._flows[flow_id] = (links, demand)
        self._order[flow_id] = self._next_order
        self._next_order += 1
        if links and demand > 0:
            for link in links:
                self._incidence.setdefault(link, {})[flow_id] = None
        self._dirty_flows[flow_id] = None

    def remove_flow(self, flow_id: Hashable) -> None:
        """Remove a flow, dirtying the links it crossed."""
        links, demand = self._flows.pop(flow_id)
        del self._order[flow_id]
        self._dirty_flows.pop(flow_id, None)
        self._rates.pop(flow_id, None)
        if links and demand > 0:
            for link in links:
                crossing = self._incidence.get(link)
                if crossing is None:
                    continue
                crossing.pop(flow_id, None)
                if crossing:
                    self._dirty_links[link] = None
                else:
                    del self._incidence[link]

    def recompute(self) -> Dict[Hashable, float]:
        """Re-solve the dirty components; return only the changed rates.

        The returned mapping holds every flow whose allocated rate
        differs (bit-for-bit) from its previous value, so callers can
        apply exactly the updates a from-scratch solve would have made
        through an equality-skipping rate setter.
        """
        if not self._dirty_links and not self._dirty_flows:
            return {}
        affected: Dict[Hashable, None] = {}
        seen_links = set(self._dirty_links)
        frontier: List[Hashable] = list(self._dirty_links)
        trivial: List[Hashable] = []
        for flow_id in self._dirty_flows:
            links, demand = self._flows[flow_id]
            if links and demand > 0:
                affected[flow_id] = None
                for link in links:
                    if link not in seen_links:
                        seen_links.add(link)
                        frontier.append(link)
            else:
                trivial.append(flow_id)
        # Closure of the dirty links over the flow-link bipartite graph:
        # every flow crossing a reached link joins the sub-problem, and
        # drags its own links in behind it.
        while frontier:
            link = frontier.pop()
            for flow_id in self._incidence.get(link, ()):
                if flow_id not in affected:
                    affected[flow_id] = None
                    for other in self._flows[flow_id][0]:
                        if other not in seen_links:
                            seen_links.add(other)
                            frontier.append(other)
        changed: Dict[Hashable, float] = {}
        rates = self._rates
        if affected:
            order = self._order
            sub_flows = {fid: self._flows[fid]
                         for fid in sorted(affected, key=order.__getitem__)}
            sub_caps = {link: self._capacities[link] for link in seen_links}
            for fid, rate in max_min_fair(sub_flows, sub_caps).items():
                if rates.get(fid) != rate:
                    rates[fid] = rate
                    changed[fid] = rate
        for fid in trivial:
            links, demand = self._flows[fid]
            rate = demand if not links else 0.0
            if rates.get(fid) != rate:
                rates[fid] = rate
                changed[fid] = rate
        self._dirty_links.clear()
        self._dirty_flows.clear()
        self.recompute_count += 1
        self.affected_flow_count += len(affected)
        return changed

    def rates(self) -> Dict[Hashable, float]:
        """The full current allocation (recomputing first if dirty)."""
        self.recompute()
        return dict(self._rates)
