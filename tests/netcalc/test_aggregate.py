"""Hose-model aggregation and burst propagation (paper section 4.2.2)."""

import pytest

from repro import units
from repro.netcalc.aggregate import (
    cap_at_link,
    egress_curve,
    hose_aggregate,
    sum_curves,
)
from repro.netcalc.arrival import token_bucket


class TestHoseAggregate:
    def test_bandwidth_uses_min_of_both_sides(self):
        # Paper: m VMs left of a cut, N - m right; bandwidth is
        # min(m, N-m) * B, burst is m * S.
        curve = hose_aggregate(m=6, n_total=9, bandwidth=10.0, burst=5.0)
        assert curve.sustained_rate == pytest.approx(3 * 10.0)
        assert curve.burst == pytest.approx(6 * 5.0)

    def test_symmetric_cut(self):
        curve = hose_aggregate(m=4, n_total=8, bandwidth=10.0, burst=5.0)
        assert curve.sustained_rate == pytest.approx(40.0)
        assert curve.burst == pytest.approx(20.0)

    def test_tighter_than_naive_sum(self):
        naive = token_bucket(6 * 10.0, 6 * 5.0)
        tight = hose_aggregate(m=6, n_total=9, bandwidth=10.0, burst=5.0)
        assert naive.dominates(tight)
        assert not tight.dominates(naive)

    def test_peak_rate_limits_burst_drain(self):
        curve = hose_aggregate(m=2, n_total=4, bandwidth=10.0, burst=500.0,
                               peak_rate=100.0, packet_size=10.0)
        assert curve.peak_rate == pytest.approx(200.0)
        assert curve.sustained_rate == pytest.approx(20.0)

    def test_rejects_degenerate_cut(self):
        with pytest.raises(ValueError):
            hose_aggregate(m=0, n_total=5, bandwidth=1.0, burst=1.0)
        with pytest.raises(ValueError):
            hose_aggregate(m=5, n_total=5, bandwidth=1.0, burst=1.0)


class TestCapAtLink:
    def test_cap_limits_short_term_rate(self):
        curve = token_bucket(5.0, 1000.0)
        capped = cap_at_link(curve, link_rate=50.0, packet_size=10.0)
        assert capped(0.0) == pytest.approx(10.0)
        # Long term the token bucket is the binding constraint again.
        assert capped.sustained_rate == pytest.approx(5.0)

    def test_cap_noop_when_link_is_fast(self):
        curve = token_bucket(5.0, 8.0)
        capped = cap_at_link(curve, link_rate=1e9, packet_size=10.0)
        for t in [0.0, 1.0, 10.0]:
            assert capped(t) == pytest.approx(curve(t))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            cap_at_link(token_bucket(1.0, 1.0), 0.0)


class TestEgressPropagation:
    def test_token_bucket_burst_inflates_by_rate_times_capacity(self):
        # Paper: A_{B,S} through a port of queue capacity c egresses as
        # A_{B, B*c + S}.
        ingress = token_bucket(10.0, 100.0)
        egress = egress_curve(ingress, queue_capacity_seconds=2.0)
        assert egress.burst == pytest.approx(100.0 + 20.0)
        assert egress.sustained_rate == pytest.approx(10.0)

    def test_zero_capacity_is_identity(self):
        ingress = token_bucket(10.0, 100.0)
        egress = egress_curve(ingress, 0.0)
        assert egress == ingress

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            egress_curve(token_bucket(1.0, 1.0), -0.1)

    def test_egress_dominates_ingress(self):
        ingress = token_bucket(10.0, 100.0)
        egress = egress_curve(ingress, 1.5)
        assert egress.dominates(ingress)


class TestSumCurves:
    def test_sum_none_for_empty(self):
        assert sum_curves([]) is None

    def test_sum_matches_manual(self):
        a, b, c = (token_bucket(1.0, 2.0), token_bucket(3.0, 4.0),
                   token_bucket(5.0, 6.0))
        total = sum_curves([a, b, c])
        assert total.sustained_rate == pytest.approx(9.0)
        assert total.burst == pytest.approx(12.0)
