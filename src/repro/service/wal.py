"""Write-ahead intent log and snapshot store for the admission service.

Durability model: every ingress item is logged as an ``enq`` intent
*before* it is enqueued, and closed with a ``done`` record carrying the
outcome (and, for admissions, the committed assignment) *after* the
state change.  Records are JSON lines, flushed after every write, so a
``kill -9`` can lose at most a partially written trailing line -- the
reader stops at the first unparseable line and treats everything before
it as the durable prefix.

Recovery = load the latest snapshot, then redo the ``done`` records
the snapshot has not folded in yet -- **in log order**, which is the
order the original process applied their effects (the queue reorders
admissions by deadline, so completion order is not submission order)
-- then re-enqueue any ``enq`` without a matching ``done``: those were
in the queue or in flight when the process died.  Admissions are
re-committed via ``adopt`` with their logged assignment (no re-running
of admission math), so the rebuilt books are bit-identical.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["WriteAheadLog", "SnapshotStore", "replay_records",
           "recovery_plan"]


class WriteAheadLog:
    """Append-only JSONL intent log, one flush per record.

    ``append`` assigns monotonically increasing sequence numbers to
    ``enq`` records; ``done`` records reference the sequence they
    close.  The log is opened in append mode so a restarted service
    keeps extending the same file past the replayed prefix.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._next_seq = 0
        durable_bytes = 0
        for raw, record in _durable_lines(self.path):
            durable_bytes += len(raw)
            if record.get("t") == "enq":
                self._next_seq = max(self._next_seq,
                                     int(record["seq"]) + 1)
        if (self.path.exists()
                and self.path.stat().st_size > durable_bytes):
            # Drop a torn trailing line (a kill -9 mid-write) before
            # appending: readers stop at the first unparseable line, so
            # anything written after the tear would be invisible.
            with open(self.path, "r+", encoding="utf-8") as fh:
                fh.truncate(durable_bytes)
        self._fh = open(self.path, "a", encoding="utf-8")

    def log_enq(self, kind: str, time: float, payload: Dict[str, Any],
                deadline: Optional[float] = None,
                source: Optional[int] = None) -> int:
        """Record intent to process one ingress item; returns its seq."""
        seq = self._next_seq
        self._next_seq += 1
        record = {"t": "enq", "seq": seq, "kind": kind, "time": time,
                  "payload": payload}
        if deadline is not None:
            record["deadline"] = deadline
        if source is not None:
            record["source"] = source
        self._write(record)
        return seq

    def log_done(self, seq: int, time: float, outcome: str,
                 **extra: Any) -> None:
        """Close intent ``seq`` with its outcome (after the state
        change it describes is in memory -- the redo payload, e.g. the
        committed assignment, rides in ``extra``)."""
        record = {"t": "done", "seq": seq, "time": time,
                  "outcome": outcome}
        record.update(extra)
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the log file handle (recovery needs no clean close)."""
        self._fh.close()


def _durable_lines(path: Path) -> Iterator[Tuple[bytes, Dict[str, Any]]]:
    """(raw line, parsed record) pairs of the durable prefix.

    Read in binary so the summed raw lengths are byte offsets -- the
    tear-truncation in :class:`WriteAheadLog` needs them for
    ``truncate``.  Stops at the first line that is not a complete JSON
    object (a torn tail or foreign garbage).
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "rb") as fh:
        for raw in fh:
            if not raw.endswith(b"\n"):
                return  # torn tail: no newline made it to disk
            try:
                record = json.loads(raw.decode("utf-8"))
            except ValueError:
                return
            if not isinstance(record, dict):
                return
            yield raw, record


def replay_records(path: Path) -> Iterator[Dict[str, Any]]:
    """Yield the durable prefix of a WAL: stop at the first torn line."""
    for _raw, record in _durable_lines(path):
        yield record


class SnapshotStore:
    """Atomic full-state snapshots, one file, replaced in place.

    Snapshots are written to a temp file in the same directory and
    ``os.replace``d over the target, so a crash mid-snapshot leaves the
    previous snapshot intact.  Each snapshot records ``last_seq`` -- the
    newest WAL sequence already folded into it -- so recovery knows
    where redo starts.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def save(self, state: Dict[str, Any]) -> None:
        """Write ``state`` atomically (temp file + ``os.replace``)."""
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=self.path.name + ".")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(state, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, str(self.path))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self) -> Optional[Dict[str, Any]]:
        """The current snapshot, or ``None`` if none was taken yet."""
        if not self.path.exists():
            return None
        with open(self.path, "r", encoding="utf-8") as fh:
            return json.load(fh)


def recovery_plan(path: Path, folded_done: int,
                  ) -> Tuple[List[Dict[str, Any]],
                             List[Dict[str, Any]], int]:
    """Split a WAL into (redo, reenqueue, total_done) vs a snapshot.

    ``folded_done`` is the snapshot's count of ``done`` records already
    folded into it (``done`` log positions are stable across restarts:
    the log is append-only and read up to its durable prefix).  ``redo``
    is every closed intent past that point, **in done-log order** --
    the order the effects were originally applied, which matters
    because the ingress queue reorders admissions by deadline.
    ``reenqueue`` is every open intent (``enq`` without ``done``), in
    seq order -- those were queued or in flight at the crash and must
    be processed again.  ``total_done`` is the durable done count, the
    restarted service's baseline for its next snapshot.
    """
    enq: Dict[int, Dict[str, Any]] = {}
    done_records: List[Dict[str, Any]] = []
    for record in replay_records(path):
        if record.get("t") == "enq":
            enq[int(record["seq"])] = record
        elif record.get("t") == "done":
            done_records.append(record)
    redo = []
    for position, done in enumerate(done_records):
        seq = int(done["seq"])
        if position >= folded_done and seq in enq:
            redo.append(dict(enq[seq], done=done))
    closed = {int(done["seq"]) for done in done_records}
    reenqueue = [enq[seq] for seq in sorted(enq) if seq not in closed]
    return redo, reenqueue, len(done_records)
