"""The command-line interface."""

import csv
import json
import subprocess
import sys

import pytest

from repro.cli import main


class TestAdmit:
    def test_admit_prints_placement_and_bounds(self, capsys):
        code = main(["admit", "--vms", "6", "--pods", "1",
                     "--racks-per-pod", "2", "--servers-per-rack", "4",
                     "--slots", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ADMITTED 6 VMs" in out
        assert "latency bound" in out

    def test_admit_rejects_oversized_tenant(self, capsys):
        code = main(["admit", "--vms", "1000", "--pods", "1",
                     "--racks-per-pod", "1", "--servers-per-rack", "2",
                     "--slots", "4"])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out


class TestBounds:
    def test_bounds_table(self, capsys):
        code = main(["bounds", "--bandwidth-mbps", "250",
                     "--burst-kb", "15", "--delay-us", "1000",
                     "--bmax-gbps", "1"])
        out = capsys.readouterr().out
        assert code == 0
        # Rows for small and large messages, monotone bounds.
        lines = [l for l in out.splitlines() if "KB" in l and "ms" in l]
        assert len(lines) >= 8


class TestPace:
    def test_pace_reports_wire_split(self, capsys):
        code = main(["pace", "--rate-gbps", "2", "--packets", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "void" in out
        assert "pacing error" in out


class TestChurn:
    def test_churn_runs_three_policies(self, capsys):
        code = main(["churn", "--pods", "1", "--racks-per-pod", "2",
                     "--servers-per-rack", "4", "--slots", "4",
                     "--horizon", "10", "--occupancy", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        for policy in ("locality", "oktopus", "silo"):
            assert policy in out


class TestTrace:
    def test_trace_emits_plottable_artifacts(self, capsys, tmp_path):
        prefix = str(tmp_path / "run")
        code = main(["trace", "--duration-ms", "5", "--seed", "3",
                     "--out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "p99=" in out
        events = tmp_path / "run.events.jsonl"
        latency = tmp_path / "run.latency.csv"
        queues = tmp_path / "run.queues.csv"
        admission = tmp_path / "run.admission.csv"
        for artifact in (events, latency, queues, admission):
            assert artifact.exists(), artifact
        # Every event line is a JSON object with a registered kind.
        lines = events.read_text().splitlines()
        assert lines
        kinds = {json.loads(l)["kind"] for l in lines}
        assert "flow.finish" in kinds
        assert "admission" in kinds
        # The latency CSV alone reconstructs per-tenant percentiles.
        rows = list(csv.DictReader(latency.open()))
        assert rows
        assert {"tenant_id", "latency"} <= set(rows[0])
        assert all(float(r["latency"]) > 0 for r in rows)
        # The queue CSV gives (port, time, depth) triples.
        qrows = list(csv.DictReader(queues.open()))
        assert qrows
        assert {"port", "time", "mean", "max"} <= set(qrows[0])

    def test_trace_without_out_uses_ring_buffer(self, capsys):
        code = main(["trace", "--duration-ms", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "traced" in out and "events" in out

    def test_churn_trace_out_writes_per_policy_files(self, capsys,
                                                     tmp_path):
        prefix = str(tmp_path / "churn")
        code = main(["churn", "--pods", "1", "--racks-per-pod", "2",
                     "--servers-per-rack", "4", "--slots", "4",
                     "--horizon", "5", "--occupancy", "0.5",
                     "--trace-out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "admitted=" in out  # the audit summary line
        for policy in ("locality", "oktopus", "silo"):
            assert (tmp_path / f"churn.{policy}.events.jsonl").exists()
            assert (tmp_path / f"churn.{policy}.admission.csv").exists()
            assert (tmp_path / f"churn.{policy}.util.csv").exists()

    def test_pace_trace_out_writes_stamp_events(self, capsys, tmp_path):
        path = str(tmp_path / "pace.jsonl")
        code = main(["pace", "--rate-gbps", "2", "--packets", "50",
                     "--trace-out", path])
        assert code == 0
        kinds = [json.loads(l)["kind"]
                 for l in open(path).read().splitlines()]
        assert "pacer.stamp" in kinds
        assert "pacer.void" in kinds


SMALL_TOPO = ["--pods", "1", "--racks-per-pod", "2",
              "--servers-per-rack", "4", "--slots", "4"]


class TestFaults:
    def test_faults_campaign_emits_csvs(self, capsys, tmp_path):
        prefix = str(tmp_path / "f")
        code = main(["faults", *SMALL_TOPO, "--duration-ms", "50",
                     "--seed", "7", "--out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault events" in out
        faults = list(csv.DictReader(open(f"{prefix}.faults.csv")))
        assert {"time", "target", "action", "factor", "affected",
                "recovered", "degraded", "evicted"} <= set(faults[0])
        recovery = list(csv.DictReader(open(f"{prefix}.recovery.csv")))
        for row in recovery:
            assert row["outcome"] in ("recovered", "degraded", "evicted")
        # Every recovery event also landed in the JSONL stream.
        kinds = [json.loads(l)["kind"]
                 for l in open(f"{prefix}.events.jsonl")]
        assert kinds.count("fault.recovery") >= len(recovery)

    def test_same_seed_runs_are_byte_identical(self, capsys, tmp_path):
        def run(prefix):
            assert main(["faults", *SMALL_TOPO, "--duration-ms", "50",
                         "--seed", "7", "--out", prefix]) == 0
            capsys.readouterr()
            return (open(f"{prefix}.faults.csv", "rb").read(),
                    open(f"{prefix}.recovery.csv", "rb").read())

        first = run(str(tmp_path / "a"))
        second = run(str(tmp_path / "b"))
        assert first == second
        assert first[0] and first[1]

    def test_different_seed_changes_the_schedule(self, capsys, tmp_path):
        def run(prefix, seed):
            assert main(["faults", *SMALL_TOPO, "--duration-ms", "50",
                         "--seed", seed, "--out", prefix]) == 0
            capsys.readouterr()
            return open(f"{prefix}.faults.csv", "rb").read()

        assert run(str(tmp_path / "a"), "7") != \
            run(str(tmp_path / "b"), "8")

    def test_empty_schedule_touches_nothing(self, capsys, tmp_path):
        prefix = str(tmp_path / "f")
        code = main(["faults", *SMALL_TOPO, "--faults", "none",
                     "--duration-ms", "10", "--out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 0 fault events" in out
        assert list(csv.DictReader(open(f"{prefix}.recovery.csv"))) == []

    def test_churn_with_faults_writes_recovery_csvs(self, capsys,
                                                    tmp_path):
        prefix = str(tmp_path / "churn")
        code = main(["churn", *SMALL_TOPO, "--horizon", "5",
                     "--occupancy", "0.5", "--seed", "2",
                     "--faults", "poisson:mtbf_ms=500,mttr_ms=200",
                     "--trace-out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults: affected=" in out
        for policy in ("locality", "oktopus", "silo"):
            path = tmp_path / f"churn.{policy}.recovery.csv"
            assert path.exists(), path

    def test_trace_with_faults_reports_and_dumps_schedule(self, capsys,
                                                          tmp_path):
        prefix = str(tmp_path / "tr")
        code = main(["trace", "--duration-ms", "5", "--seed", "3",
                     "--faults", "poisson:mtbf_ms=2,mttr_ms=1",
                     "--out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults: applied=" in out
        rows = list(csv.DictReader(open(f"{prefix}.faults.csv")))
        assert rows
        assert {"time", "target", "action", "factor"} <= set(rows[0])

    def test_churn_same_seed_is_byte_identical_across_processes(
            self, tmp_path):
        # Tenant ids come from a process-global counter, so cross-run
        # identity is checked in fresh interpreters.
        def run(sub):
            prefix = str(tmp_path / sub / "c")
            (tmp_path / sub).mkdir()
            subprocess.run(
                [sys.executable, "-m", "repro", "churn", *SMALL_TOPO,
                 "--horizon", "5", "--occupancy", "0.5", "--seed", "4",
                 "--faults", "poisson:mtbf_ms=500,mttr_ms=200",
                 "--trace-out", prefix],
                check=True, capture_output=True)
            return b"".join(
                open(f"{prefix}.{p}.{kind}", "rb").read()
                for p in ("locality", "oktopus", "silo")
                for kind in ("admission.csv", "recovery.csv", "util.csv"))

        assert run("a") == run("b")
