"""Typed readers for the CLI's committed trace artifacts.

``python -m repro trace --out DIR`` (and every campaign cell built on
:func:`repro.campaign.scenarios.trace_cell`) dumps two figure-ready CSV
schemas:

* ``latency.csv`` -- one row per completed application message
  (``tenant_id,src_vm,dst_vm,size,start,finish,latency,rto_events``);
* ``queues.csv`` -- the bucketed queue-depth time series of every active
  switch port (``port,time,count,mean,min,max,last``), where ``port`` is
  the simulator's ``<kind>[<index>]`` name (e.g. ``tor-down[3]``) and the
  depth values are bytes.

These readers are the inverse of those writers: they parse the files
back into typed records so offline consumers (the what-if surrogate's
calibration fit, plotting scripts, tests) share one definition of the
schema instead of re-deriving column positions.  They also resolve a
*campaign* directory -- one holding a ``manifest.json`` -- to the
artifact files of its cells, so a committed trace campaign can be used
as a calibration corpus directly.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

__all__ = [
    "LatencyRecord", "QueueBucket", "TraceArtifacts",
    "read_latency_csv", "read_queues_csv", "port_kind_of",
    "find_trace_artifacts",
]


@dataclass(frozen=True)
class LatencyRecord:
    """One completed message from a ``latency.csv`` artifact."""

    tenant_id: int
    src_vm: int
    dst_vm: int
    size: float
    start: float
    finish: float
    latency: float
    rto_events: int


@dataclass(frozen=True)
class QueueBucket:
    """One port's queue-depth aggregate over one time bucket (bytes)."""

    port: str
    time: float
    count: int
    mean: float
    vmin: float
    vmax: float
    last: float


@dataclass(frozen=True)
class TraceArtifacts:
    """The artifact files of one traced run (or one campaign cell)."""

    latency_path: Path
    queues_path: Path

    def latencies(self) -> List[LatencyRecord]:
        """Parsed ``latency.csv`` rows."""
        return read_latency_csv(self.latency_path)

    def queues(self) -> Dict[str, List[QueueBucket]]:
        """Parsed ``queues.csv`` series, keyed by port name."""
        return read_queues_csv(self.queues_path)


_LATENCY_COLUMNS = ("tenant_id", "src_vm", "dst_vm", "size", "start",
                    "finish", "latency", "rto_events")
_QUEUE_COLUMNS = ("port", "time", "count", "mean", "min", "max", "last")


def _check_header(path: Path, header, expected: Tuple[str, ...]) -> None:
    if header is None or tuple(header) != expected:
        raise ValueError(
            f"{path}: expected columns {','.join(expected)}, "
            f"got {','.join(header) if header else '<empty file>'}")


def read_latency_csv(path: Union[str, Path]) -> List[LatencyRecord]:
    """Parse a ``latency.csv`` artifact into typed records.

    Raises ``ValueError`` when the header does not match the schema, so
    a stale or foreign file fails loudly instead of mis-parsing.
    """
    path = Path(path)
    records: List[LatencyRecord] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        _check_header(path, next(reader, None), _LATENCY_COLUMNS)
        for row in reader:
            records.append(LatencyRecord(
                tenant_id=int(row[0]), src_vm=int(row[1]),
                dst_vm=int(row[2]), size=float(row[3]),
                start=float(row[4]), finish=float(row[5]),
                latency=float(row[6]), rto_events=int(row[7])))
    return records


def read_queues_csv(path: Union[str, Path]
                    ) -> Dict[str, List[QueueBucket]]:
    """Parse a ``queues.csv`` artifact into per-port bucket lists."""
    path = Path(path)
    series: Dict[str, List[QueueBucket]] = {}
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        _check_header(path, next(reader, None), _QUEUE_COLUMNS)
        for row in reader:
            bucket = QueueBucket(
                port=row[0], time=float(row[1]), count=int(row[2]),
                mean=float(row[3]), vmin=float(row[4]),
                vmax=float(row[5]), last=float(row[6]))
            series.setdefault(bucket.port, []).append(bucket)
    return series


def port_kind_of(port_name: str) -> str:
    """The port-kind part of a simulator port name.

    ``tor-down[3]`` -> ``tor-down``; names without an index bracket
    (e.g. ``vswitch``) are returned unchanged.
    """
    return port_name.split("[", 1)[0]


def find_trace_artifacts(path: Union[str, Path]) -> List[TraceArtifacts]:
    """Resolve a directory to the trace artifact sets it holds.

    Accepts either a plain artifact directory (one holding
    ``latency.csv`` + ``queues.csv`` directly) or a campaign directory
    (one holding ``manifest.json``), in which case every cell that
    produced both files contributes one :class:`TraceArtifacts`.

    Raises ``ValueError`` when the directory matches neither layout --
    the caller is pointing the calibration at the wrong place.
    """
    root = Path(path)
    direct = TraceArtifacts(latency_path=root / "latency.csv",
                            queues_path=root / "queues.csv")
    if direct.latency_path.is_file() and direct.queues_path.is_file():
        return [direct]
    manifest_path = root / "manifest.json"
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        found: List[TraceArtifacts] = []
        for cell in manifest.get("cells", []):
            files = {p.rsplit("/", 1)[-1]: root / p
                    for p in cell.get("artifacts", [])}
            if "latency.csv" in files and "queues.csv" in files:
                found.append(TraceArtifacts(
                    latency_path=files["latency.csv"],
                    queues_path=files["queues.csv"]))
        if found:
            return found
        raise ValueError(
            f"campaign {root} has no cells with latency.csv + queues.csv "
            f"artifacts (was it run with --out?)")
    raise ValueError(
        f"{root} is neither a trace artifact directory (latency.csv + "
        f"queues.csv) nor a campaign directory (manifest.json)")
