"""Sink behaviours: null, ring buffer and JSONL serialization."""

import io
import json

import pytest

from repro.obs.events import FlowStart, PacketTx, VoidEmit
from repro.obs.sink import JsonlSink, NullSink, RingBufferSink, TraceSink


def tx(i):
    return PacketTx(time=float(i), port="p", size=1.0, priority=0,
                    queued_bytes=0.0)


class TestProtocol:
    def test_base_emit_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TraceSink().emit(tx(0))

    def test_null_sink_swallows(self):
        sink = NullSink()
        for i in range(10):
            sink.emit(tx(i))  # no error, no state

    def test_context_manager_closes(self):
        out = io.StringIO()
        with JsonlSink(out) as sink:
            sink.emit(tx(0))
        with pytest.raises(ValueError):
            sink.emit(tx(1))


class TestRingBuffer:
    def test_keeps_newest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(tx(i))
        assert sink.emitted == 5
        assert sink.evicted == 2
        assert [e.time for e in sink.events] == [2.0, 3.0, 4.0]

    def test_of_kind_filters(self):
        sink = RingBufferSink()
        sink.emit(tx(0))
        sink.emit(VoidEmit(time=0.0, source="nic", wire_bytes=84.0))
        sink.emit(tx(1))
        assert len(sink.of_kind("pkt.tx")) == 2
        assert len(sink.of_kind("pacer.void")) == 1
        assert sink.of_kind("flow.start") == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonl:
    def test_writes_one_object_per_line(self):
        out = io.StringIO()
        sink = JsonlSink(out)
        sink.emit(FlowStart(time=0.5, tenant_id=3, src=1, dst=2,
                            size=100.0))
        sink.emit(tx(1))
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"kind": "flow.start", "time": 0.5,
                         "tenant_id": 3, "src": 1, "dst": 2,
                         "size": 100.0}
        assert json.loads(lines[1])["kind"] == "pkt.tx"

    def test_owns_path_target(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(tx(0))
        sink.close()
        assert json.loads(path.read_text())["kind"] == "pkt.tx"

    def test_borrowed_file_stays_open(self):
        out = io.StringIO()
        sink = JsonlSink(out)
        sink.emit(tx(0))
        sink.close()
        assert not out.closed  # borrowed, only flushed

    def test_close_is_idempotent(self):
        sink = JsonlSink(io.StringIO())
        sink.close()
        sink.close()
