"""EyeQ end to end: a distributed, RTT-scale hose congestion-control loop.

The repo long had :func:`repro.pacer.eyeq.allocate_hose_rates` -- the
*steady state* an EyeQ deployment converges to -- wired into
:class:`~repro.phynet.network.PacketNetwork` as an oracle that recomputes
the max-min split centrally every coordination interval.  That oracle is
exactly what a real deployment cannot have.  This module replaces it with
the mechanism EyeQ actually runs:

* **sender module** -- every VM's egress runs per-destination rate
  limiters (the :class:`~repro.phynet.shaper.VMShaper` destination
  buckets, started optimistically at line rate with a small burst);
  arriving rate feedback is arbitrated against the VM's *sending* hose
  ``B_s`` by a local water-fill, so the sum of its per-destination rates
  never exceeds its own guarantee;
* **receiver module** -- every interval the receiving hypervisor
  measures per-source arrival rates, estimates which senders are
  rate-limited (elastic) versus application-limited, water-fills its
  *receiving* hose ``C_d`` over those demands, and sends each active
  sender a rate feedback message -- a real 64-byte control packet that
  crosses the network and takes a propagation delay to arrive;
* **staleness** -- feedback stops when a sender goes idle; after a few
  silent intervals the sender restores that destination to line rate,
  which is what makes the scheme work-conserving (and what costs it
  delay guarantees: every fresh burst departs unthrottled until the
  loop reacts, one RTT-scale interval later).

The fixed point of receiver water-fill + sender arbitration is the
bipartite max-min allocation of :func:`allocate_hose_rates`;
``tests/mechanisms/test_eyeq_convergence.py`` pins that the simulated
loop reaches it within tolerance in a bounded number of intervals.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.mechanisms.base import Mechanism, register_mechanism
from repro.obs.events import RateFeedback
from repro.pacer.hierarchy import PacerConfig
from repro.phynet.network import PacketNetwork, VirtualMachine
from repro.phynet.packet import Packet

__all__ = ["EyeQController", "EyeQMechanism", "DEFAULT_FEEDBACK_INTERVAL",
           "FEEDBACK_BYTES", "waterfill"]

#: Control-loop period: EyeQ reacts at RTT scale, far slower than
#: packet transmission but fast against tenant workload shifts.
DEFAULT_FEEDBACK_INTERVAL = 200 * units.MICROS

#: Wire size of one rate feedback message.
FEEDBACK_BYTES = 64.0

#: A sender measured within this fraction of its advertised rate is
#: limit-bound (elastic): it wants more, so the receiver treats its
#: demand as unbounded in the water-fill.
_ELASTIC_SLACK = 0.1

#: Application-limited senders are advertised their measured rate times
#: this factor (their reservation stays at the measured rate), so a
#: sender whose offered load grows can climb back toward its fair share
#: a few percent per interval without over-reserving the hose.
_DEMAND_BOOST = 1.2

#: Intervals without fresh feedback before a sender declares the
#: advertisement stale and restores that destination to line rate.
_STALE_INTERVALS = 3

#: EWMA weight of the newest per-interval rate sample.  Transport
#: dynamics (ack clocking, recovery) make instantaneous arrival rates
#: noisy; the receiver smooths them so one slow interval does not
#: demote an elastic sender to application-limited.
_RATE_EWMA_ALPHA = 0.5

#: EWMA weight of the newest computed advertisement.  Smoothing the
#: control *output* (not just the measurement) damps the limit cycle
#: where a hose-capped sender flip-flops between elastic and
#: application-limited classification: each flip moves the advertised
#: rate only part way, so the loop settles at the fixed point instead
#: of orbiting it.
_ADVERT_EWMA_ALPHA = 0.4

#: EyeQ rate limiters carry only a couple packets of burst: unlike
#: Silo's ``{B, S}`` bucket there is no negotiated burst allowance, so
#: a throttled destination really is held to its rate.
_LIMITER_BURST_PACKETS = 2


def waterfill(capacity: float, demands: Dict[Hashable, float]
              ) -> Dict[Hashable, float]:
    """Max-min fair split of one capacity over per-key demands.

    ``math.inf`` marks an elastic demand.  This is the single-resource
    special case of :func:`repro.maxmin.max_min_fair`, inlined because
    both EyeQ modules run it per control interval on a handful of keys.
    """
    allocation: Dict[Hashable, float] = {}
    active = dict(demands)
    remaining = capacity
    while active:
        share = max(remaining, 0.0) / len(active)
        bounded = [k for k, demand in active.items() if demand <= share]
        if not bounded:
            for key in active:
                allocation[key] = share
            break
        for key in bounded:
            allocation[key] = active[key]
            remaining -= active[key]
            del active[key]
    return allocation


class _FeedbackEndpoint:
    """Delivery target for rate feedback packets (``ctrl`` payloads)."""

    __slots__ = ("controller",)

    def __init__(self, controller: "EyeQController"):
        self.controller = controller

    def on_control(self, packet: Packet) -> None:
        """A feedback message reached the sending hypervisor."""
        self.controller._on_feedback(sender=packet.dst,
                                     receiver=packet.src,
                                     rate=packet.payload[1])

    def on_drop(self, packet: Packet) -> None:
        """A lost feedback message; the next interval resends."""


class EyeQController:
    """The distributed rate-coordination loop over one network.

    One controller instance orchestrates the periodic ticks, but its
    state is strictly partitioned the way a deployment's would be:
    receiver-side measurement uses only what arrives at each receiving
    VM, sender-side arbitration uses only that sender's guarantee and
    the feedback messages it has received -- which travel through the
    simulated network as real control packets.
    """

    def __init__(self, net: PacketNetwork,
                 interval: float = DEFAULT_FEEDBACK_INTERVAL,
                 tracer=None):
        self.net = net
        self.interval = interval
        self.tracer = tracer
        #: Receiver side: last observed ``delivered_bytes`` per pair.
        self._seen_bytes: Dict[Tuple[int, int], float] = {}
        #: Receiver side: smoothed per-pair arrival rate estimates.
        self._rate_ewma: Dict[Tuple[int, int], float] = {}
        #: Sender side: advertised rate and receipt time per pair.
        self._advertised: Dict[Tuple[int, int], Tuple[float, float]] = {}
        #: Destinations each sender has ever throttled (for restore).
        self._throttled: Dict[int, set] = {}
        self.feedback_messages = 0
        self._endpoint = _FeedbackEndpoint(self)
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic control loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.net.sim.schedule(self.interval, self._tick)

    @property
    def line_rate(self) -> float:
        """The optimistic (unthrottled) per-destination rate."""
        return self.net.topology.link_rate

    # -- receiver module -----------------------------------------------------

    def _tick(self) -> None:
        now = self.net.sim.now
        by_receiver: Dict[int, List[Tuple[int, float]]] = {}
        for (src, dst), flow in self.net.transports.items():
            delivered = flow.delivered_bytes
            delta = delivered - self._seen_bytes.get((src, dst), 0.0)
            self._seen_bytes[(src, dst)] = delivered
            if delta > 0.0:
                sample = delta / self.interval
                prev = self._rate_ewma.get((src, dst))
                smoothed = (sample if prev is None else
                            _RATE_EWMA_ALPHA * sample
                            + (1.0 - _RATE_EWMA_ALPHA) * prev)
                self._rate_ewma[(src, dst)] = smoothed
                by_receiver.setdefault(dst, []).append((src, smoothed))
            else:
                self._rate_ewma.pop((src, dst), None)
        for dst, arrivals in by_receiver.items():
            self._advertise(dst, arrivals)
        self._age_stale(now)
        self.net.sim.schedule(self.interval, self._tick)

    def _advertise(self, dst: int, arrivals: List[Tuple[int, float]]
                   ) -> None:
        """One receiver's congestion detector: split ``C_d``, send rates."""
        vm = self.net.vms[dst]
        if vm.guarantee is None:
            return
        hose = vm.guarantee.bandwidth
        demands: Dict[int, float] = {}
        for src, measured in arrivals:
            advert = self._advertised.get((src, dst))
            if (advert is None
                    or measured >= (1.0 - _ELASTIC_SLACK) * advert[0]):
                demands[src] = math.inf
            else:
                demands[src] = measured
        shares = waterfill(hose, demands)
        for src, measured in arrivals:
            rate = shares[src]
            if not math.isinf(demands[src]):
                # Application-limited senders reserve only what they
                # use, but their advertisement carries growth headroom
                # so a sender whose offered load rises can climb back
                # toward its fair share a few percent per interval.
                rate = min(max(rate, measured * _DEMAND_BOOST), hose)
            advert = self._advertised.get((src, dst))
            if advert is not None:
                rate = (_ADVERT_EWMA_ALPHA * rate
                        + (1.0 - _ADVERT_EWMA_ALPHA) * advert[0])
            self._send_feedback(dst, src, rate, measured)

    def _send_feedback(self, dst: int, src: int, rate: float,
                       arrival_rate: float) -> None:
        """Ship one rate advertisement ``dst -> src`` through the fabric."""
        packet = Packet(
            src=dst, dst=src, size=FEEDBACK_BYTES,
            route=self.net.route(dst, src), flow=self._endpoint,
            is_control=True, payload=("ctrl", rate))
        packet.sent_time = self.net.sim.now
        self.feedback_messages += 1
        if self.tracer is not None:
            self.tracer.emit(RateFeedback(
                time=self.net.sim.now, src=src, dst=dst, rate=rate,
                arrival_rate=arrival_rate))
        self.net.transmit(packet, dst)

    # -- sender module -------------------------------------------------------

    def _on_feedback(self, sender: int, receiver: int,
                     rate: float) -> None:
        self._advertised[(sender, receiver)] = (rate, self.net.sim.now)
        self._apply_sender(sender)

    def _apply_sender(self, sender: int) -> None:
        """Arbitrate advertised rates against the sender's own hose."""
        vm = self.net.vms.get(sender)
        if vm is None or vm.pacer is None or vm.guarantee is None:
            return
        advertised = {dst: entry[0]
                      for (src, dst), entry in self._advertised.items()
                      if src == sender}
        throttled = self._throttled.setdefault(sender, set())
        if advertised:
            shares = waterfill(vm.guarantee.bandwidth, advertised)
            for dst, rate in shares.items():
                vm.pacer.set_destination_rate(dst, rate)
                throttled.add(dst)
        # Destinations whose advertisements aged out go back to line
        # rate: unthrottled until the next congestion feedback.
        for dst in throttled - set(advertised):
            vm.pacer.set_destination_rate(dst, self.line_rate)
        throttled &= set(advertised)

    def _age_stale(self, now: float) -> None:
        horizon = _STALE_INTERVALS * self.interval
        stale_senders = set()
        for (src, dst), (_rate, stamped) in list(self._advertised.items()):
            if now - stamped > horizon:
                del self._advertised[(src, dst)]
                stale_senders.add(src)
        for sender in stale_senders:
            self._apply_sender(sender)

    # -- inspection ----------------------------------------------------------

    def pair_rate(self, src: int, dst: int) -> Optional[float]:
        """The rate limit currently applied to one pair, if throttled."""
        entry = self._advertised.get((src, dst))
        if entry is None:
            return None
        vm = self.net.vms[src]
        if vm.pacer is None:
            return entry[0]
        return vm.pacer.destination_bucket(dst).rate


@register_mechanism
class EyeQMechanism(Mechanism):
    """Distributed hose congestion control; no pacing calculus, no bursts."""

    name = "eyeq"
    scheme = "eyeq"

    def __init__(self, interval: float = DEFAULT_FEEDBACK_INTERVAL):
        self.interval = interval
        #: The controller attached by :meth:`start` (one per run).
        self.controller: Optional[EyeQController] = None

    def build_network(self, topology, tracer=None, **kwargs):
        """Plain ports, oracle hose coordination off (the loop replaces it)."""
        kwargs.setdefault("coordination", False)
        return super().build_network(topology, tracer=tracer, **kwargs)

    def add_vm(self, net: PacketNetwork, vm_id: int, tenant_id: int,
               server: int, guarantee: Optional[NetworkGuarantee],
               pacer_config: Optional[PacerConfig] = None
               ) -> VirtualMachine:
        """Place the VM behind per-destination rate limiters.

        The limiters start at line rate (EyeQ is work-conserving until
        told otherwise) with a two-packet burst; the control loop's
        feedback is what subsequently holds pairs to their hose shares.
        """
        if guarantee is None:
            return net.add_vm(vm_id, tenant_id, server, guarantee=None,
                              paced=False)
        if pacer_config is None:
            line = net.topology.link_rate
            pacer_config = PacerConfig(
                bandwidth=line,
                burst=_LIMITER_BURST_PACKETS * units.MTU,
                peak_rate=line, packet_size=units.MTU)
        return net.add_vm(vm_id, tenant_id, server, guarantee=guarantee,
                          paced=True, pacer_config=pacer_config)

    def start(self, net: PacketNetwork) -> None:
        """Attach and start the distributed control loop."""
        self.controller = EyeQController(net, interval=self.interval,
                                         tracer=net.tracer)
        self.controller.start()

    def counters(self, net: PacketNetwork) -> Dict[str, float]:
        """Control-plane cost: feedback messages and their wire bytes."""
        sent = (self.controller.feedback_messages
                if self.controller is not None else 0)
        return {"feedback_messages": sent,
                "feedback_bytes": sent * FEEDBACK_BYTES}
