"""Command-line entry points: ``python -m repro <command>``.

A thin operational layer over the library for users who want to poke at
the system without writing code:

* ``admit``      -- run admission control for one tenant spec and print
                    the placement and latency bound;
* ``bounds``     -- print the message-latency bound table for a guarantee;
* ``pace``       -- show the void-packet wire schedule for a rate limit;
* ``churn``      -- run the flow-level cluster simulation and print
                    admission/utilization for the three policies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.silo import SiloController
from repro.core.tenant import TenantClass, TenantRequest
from repro.topology import TreeTopology


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--racks-per-pod", type=int, default=4)
    parser.add_argument("--servers-per-rack", type=int, default=10)
    parser.add_argument("--slots", type=int, default=8)
    parser.add_argument("--link-gbps", type=float, default=10.0)
    parser.add_argument("--oversubscription", type=float, default=5.0)
    parser.add_argument("--buffer-kb", type=float, default=312.0)


def _topology(args: argparse.Namespace) -> TreeTopology:
    return TreeTopology(
        n_pods=args.pods, racks_per_pod=args.racks_per_pod,
        servers_per_rack=args.servers_per_rack,
        slots_per_server=args.slots,
        link_rate=units.gbps(args.link_gbps),
        oversubscription=args.oversubscription,
        buffer_bytes=args.buffer_kb * units.KB)


def _guarantee(args: argparse.Namespace) -> NetworkGuarantee:
    return NetworkGuarantee(
        bandwidth=units.mbps(args.bandwidth_mbps),
        burst=args.burst_kb * units.KB,
        delay=(args.delay_us * units.MICROS
               if args.delay_us is not None else None),
        peak_rate=(units.gbps(args.bmax_gbps)
                   if args.bmax_gbps is not None else None))


def cmd_admit(args: argparse.Namespace) -> int:
    silo = SiloController(_topology(args))
    request = TenantRequest(
        n_vms=args.vms, guarantee=_guarantee(args),
        tenant_class=(TenantClass.CLASS_A if args.delay_us is not None
                      else TenantClass.CLASS_B))
    admitted = silo.admit(request)
    if admitted is None:
        print("REJECTED: the guarantees cannot be met on this topology")
        return 1
    counts = admitted.placement.vms_per_server()
    print(f"ADMITTED {request.n_vms} VMs across "
          f"{len(counts)} servers: "
          + ", ".join(f"server {s}: {c} VM(s)"
                      for s, c in sorted(counts.items())))
    if request.wants_delay:
        for size_kb in (1, 15, 100, 1000):
            bound = silo.message_latency_bound(request.tenant_id,
                                               size_kb * units.KB)
            print(f"  {size_kb:5d} KB message latency bound: "
                  f"{units.to_msec(bound):8.3f} ms")
    print(f"  worst switch queue bound now: "
          f"{units.to_usec(silo.worst_queue_bound()):.1f} us")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    guarantee = _guarantee(args)
    if not guarantee.wants_delay:
        print("bounds need a --delay-us guarantee", file=sys.stderr)
        return 2
    print(f"{'message':>10}  {'bound':>12}")
    for size_kb in (0.1, 1, 4, 15, 50, 100, 500, 1000, 10000):
        bound = guarantee.message_latency_bound(size_kb * units.KB)
        print(f"{size_kb:8.1f}KB  {units.to_msec(bound):10.3f}ms")
    return 0


def cmd_pace(args: argparse.Namespace) -> int:
    from repro.pacer import PacerConfig, VMPacer, VoidScheduler
    link = units.gbps(args.link_gbps)
    rate = units.gbps(args.rate_gbps)
    pacer = VMPacer(PacerConfig(bandwidth=rate, burst=units.MTU,
                                peak_rate=rate))
    stamped = [(pacer.stamp("d", units.MTU, 0.0), units.MTU)
               for _ in range(args.packets)]
    schedule = VoidScheduler(link).schedule(stamped)
    data_rate, void_rate = schedule.rates()
    print(f"rate limit {args.rate_gbps:g} Gbps on {args.link_gbps:g} GbE: "
          f"{len(schedule.data_slots)} data + "
          f"{len(schedule.void_slots)} void frames")
    print(f"wire: data {units.to_gbps(data_rate):.2f} Gbps + "
          f"void {units.to_gbps(void_rate):.2f} Gbps")
    print(f"worst pacing error: {schedule.max_pacing_error() * 1e9:.1f} ns")
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
    from repro.placement import (
        LocalityPlacementManager,
        OktopusPlacementManager,
        SiloPlacementManager,
    )
    for name, cls, sharing in [
            ("locality", LocalityPlacementManager, "maxmin"),
            ("oktopus", OktopusPlacementManager, "reserved"),
            ("silo", SiloPlacementManager, "reserved")]:
        topo = _topology(args)
        manager = cls(topo)
        workload = TenantWorkload.for_occupancy(
            WorkloadConfig(), args.occupancy, topo.n_slots, seed=args.seed)
        sim = ClusterSim(manager, sharing=sharing)
        stats = sim.run(workload, until=args.horizon)
        print(f"{name:10s} admitted={manager.admitted_fraction():6.1%} "
              f"occupancy={stats.mean_occupancy:5.1%} "
              f"utilization={stats.network_utilization:6.2%} "
              f"jobs={stats.finished_jobs}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silo (SIGCOMM 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("admit", help="admission-control one tenant")
    _add_topology_args(p)
    p.add_argument("--vms", type=int, default=8)
    p.add_argument("--bandwidth-mbps", type=float, default=250.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_admit)

    p = sub.add_parser("bounds", help="message latency bound table")
    p.add_argument("--bandwidth-mbps", type=float, default=250.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("pace", help="void-packet wire schedule")
    p.add_argument("--rate-gbps", type=float, default=2.0)
    p.add_argument("--link-gbps", type=float, default=10.0)
    p.add_argument("--packets", type=int, default=1000)
    p.set_defaults(func=cmd_pace)

    p = sub.add_parser("churn", help="flow-level cluster simulation")
    _add_topology_args(p)
    p.add_argument("--occupancy", type=float, default=0.75)
    p.add_argument("--horizon", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_churn)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
