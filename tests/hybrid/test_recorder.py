"""Unit contract of the fluid-side port usage recorder.

The hybrid coupling's correctness rests on the recorder's series being
the *exact* stepwise background occupancy of each watched port -- these
tests pin the folding, coalescing, clamping, lookup, and window
re-basing semantics that make that claim true.
"""

from repro.hybrid.recorder import PortUsageRecorder


class TestRecord:
    def test_series_starts_at_zero(self):
        recorder = PortUsageRecorder([3, 7])
        assert recorder.ports == frozenset({3, 7})
        assert recorder.series[3] == [(0.0, 0.0)]
        assert recorder.series[7] == [(0.0, 0.0)]

    def test_delta_folds_into_watched_ports_only(self):
        recorder = PortUsageRecorder([3])
        recorder.record((1, 3, 5), old=0.0, new=4.0, now=1.0)
        assert recorder.series[3] == [(0.0, 0.0), (1.0, 4.0)]
        assert 1 not in recorder.series and 5 not in recorder.series

    def test_zero_delta_records_nothing(self):
        recorder = PortUsageRecorder([3])
        recorder.record((3,), old=2.0, new=2.0, now=1.0)
        assert recorder.series[3] == [(0.0, 0.0)]

    def test_same_time_changes_coalesce(self):
        recorder = PortUsageRecorder([3])
        recorder.record((3,), old=0.0, new=4.0, now=1.0)
        recorder.record((3,), old=0.0, new=2.0, now=1.0)
        assert recorder.series[3] == [(0.0, 0.0), (1.0, 6.0)]

    def test_float_slop_clamps_at_zero(self):
        recorder = PortUsageRecorder([3])
        recorder.record((3,), old=0.0, new=4.0, now=1.0)
        recorder.record((3,), old=4.0 + 1e-9, new=0.0, now=2.0)
        assert recorder.series[3][-1] == (2.0, 0.0)


class TestUsedAt:
    def build(self):
        recorder = PortUsageRecorder([3])
        recorder.record((3,), old=0.0, new=4.0, now=1.0)
        recorder.record((3,), old=4.0, new=6.0, now=2.0)
        return recorder

    def test_stepwise_lookup(self):
        recorder = self.build()
        assert recorder.used_at(3, 0.5) == 0.0
        assert recorder.used_at(3, 1.0) == 4.0   # at the breakpoint
        assert recorder.used_at(3, 1.5) == 4.0   # between breakpoints
        assert recorder.used_at(3, 99.0) == 6.0  # past the last


class TestWindow:
    def build(self):
        recorder = PortUsageRecorder([3])
        recorder.record((3,), old=0.0, new=4.0, now=1.0)
        recorder.record((3,), old=4.0, new=6.0, now=2.0)
        recorder.record((3,), old=6.0, new=1.0, now=3.0)
        return recorder

    def test_leading_entry_carries_prevailing_level(self):
        window = self.build().window(3, start=1.5, end=3.5)
        assert window == [(0.0, 4.0), (0.5, 6.0), (1.5, 1.0)]

    def test_end_is_exclusive(self):
        window = self.build().window(3, start=0.0, end=3.0)
        assert window == [(0.0, 0.0), (1.0, 4.0), (2.0, 6.0)]

    def test_empty_stretch_is_just_the_level(self):
        window = self.build().window(3, start=5.0, end=6.0)
        assert window == [(0.0, 1.0)]
