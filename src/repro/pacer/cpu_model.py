"""Analytic CPU-cost model for the pacer (substitutes the Fig. 10a testbed).

The paper's own explanation of its microbenchmark is that "the overall CPU
usage is proportional to the packet rate shown in the red line" -- pacing
cost is descriptor handling, so it scales with frames per second, with void
frames cheaper than data frames (no payload to DMA out of guest memory) and
a mildly super-linear term capturing interrupt pressure at multi-Mpps
rates.  The default coefficients are calibrated to the paper's three
anchors: ~0.6 cores generating only void packets at 10 Gbps, ~2.1 cores at
a 9 Gbps data rate (1.5 Mpps total), and ~1.3 cores at 10 Gbps data with
pacing (~0.2 cores above the no-pacing baseline).

This is an explicit hardware substitution (see DESIGN.md): we reproduce the
*shape* of Fig. 10a -- cost tracks total packet rate and peaks at 9 Gbps,
where void filler packets are smallest and most numerous -- not the cycle
counts of one Xeon SKU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.pacer.void_packets import FRAME_OVERHEAD, VoidScheduler


@dataclass(frozen=True)
class CpuSample:
    """One operating point of the pacer."""

    rate_limit: float
    data_pps: float
    void_pps: float
    data_rate: float
    void_rate: float
    cores: float

    @property
    def total_pps(self) -> float:
        """Data plus void packets per second."""
        return self.data_pps + self.void_pps


class PacerCpuModel:
    """Cores consumed as a function of the frame mix.

    ``cores = base + (w_data * data_pps + w_void * void_pps) ** alpha * c``
    with defaults calibrated to the paper's anchors.
    """

    def __init__(self, base_cores: float = 0.05,
                 data_weight: float = 1.0, void_weight: float = 0.55,
                 alpha: float = 1.33, scale: float = 1.67e-8):
        self.base_cores = base_cores
        self.data_weight = data_weight
        self.void_weight = void_weight
        self.alpha = alpha
        self.scale = scale

    def cores(self, data_pps: float, void_pps: float) -> float:
        """Predicted cores for the given data/void packet rates."""
        if data_pps < 0 or void_pps < 0:
            raise ValueError("packet rates must be >= 0")
        weighted = (self.data_weight * data_pps
                    + self.void_weight * void_pps)
        return self.base_cores + self.scale * weighted ** self.alpha

    def sample_rate_limit(self, rate_limit: float, link_rate: float,
                          packet_size: float = units.MTU,
                          duration: float = 10 * units.MILLIS) -> CpuSample:
        """Run the real void scheduler at one rate limit and cost it.

        Generates a saturated packet stream paced to ``rate_limit``, builds
        the actual wire schedule (voids included) and evaluates the CPU
        model on the resulting frame rates -- so the sample reflects the
        true void quantization, not an idealized gap formula.
        """
        if not 0 < rate_limit <= link_rate:
            raise ValueError("rate limit must be in (0, link rate]")
        wire_packet = packet_size + FRAME_OVERHEAD
        interval = wire_packet / rate_limit
        n_packets = max(2, int(duration / interval))
        stamped = [(i * interval, packet_size) for i in range(n_packets)]
        schedule = VoidScheduler(link_rate).schedule(stamped)
        data_rate, void_rate = schedule.rates()
        span = n_packets * interval
        data_pps = len(schedule.data_slots) / span
        void_pps = len(schedule.void_slots) / span
        return CpuSample(
            rate_limit=rate_limit,
            data_pps=data_pps,
            void_pps=void_pps,
            data_rate=data_rate,
            void_rate=void_rate,
            cores=self.cores(data_pps, void_pps),
        )

    def baseline_no_pacing(self, link_rate: float,
                           packet_size: float = units.MTU) -> float:
        """CPU cores to drive the link at line rate with no pacer."""
        pps = link_rate / (packet_size + FRAME_OVERHEAD)
        return self.base_cores + self.scale * (self.data_weight
                                               * pps) ** self.alpha
