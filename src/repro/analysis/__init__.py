"""Statistics and report helpers shared by tests and benchmarks."""

from repro.analysis.stats import (
    percentile,
    cdf_points,
    mean,
    summarize,
)
from repro.analysis.capacity import CapacityReport, LevelUsage, capacity_report
from repro.analysis.surrogate import (
    REPORT_QUANTILES,
    HopSamples,
    WhatIfEstimate,
    WhatIfModel,
    fit_whatif_model,
    quantile_label,
)

__all__ = [
    "percentile",
    "cdf_points",
    "mean",
    "summarize",
    "CapacityReport",
    "LevelUsage",
    "capacity_report",
    "REPORT_QUANTILES",
    "HopSamples",
    "WhatIfEstimate",
    "WhatIfModel",
    "fit_whatif_model",
    "quantile_label",
]
