"""Partition-aggregate OLDI application."""

import random

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp
from repro.phynet.oldi import PartitionAggregateApp
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.patterns import all_to_all_pairs


def build(scheme="tcp", paced=False, n_workers=5):
    topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=6, link_rate=units.gbps(10))
    net = PacketNetwork(topo, scheme=scheme)
    metrics = MetricsCollector()
    guarantee = NetworkGuarantee(bandwidth=units.mbps(500),
                                 burst=20 * units.KB,
                                 delay=units.msec(1),
                                 peak_rate=units.gbps(1)) if paced else None
    for vm in range(n_workers + 1):
        net.add_vm(vm, 1, vm % 3, guarantee=guarantee, paced=paced)
    app = PartitionAggregateApp(
        net, metrics, 1, root_vm=0, worker_vms=list(range(1, n_workers + 1)),
        rng=random.Random(5), worker_compute=Fixed(200 * units.MICROS),
        deadline=20 * units.MILLIS)
    return net, metrics, app


class TestPartitionAggregate:
    def test_queries_complete(self):
        net, metrics, app = build()
        app.start(interval=units.msec(2))
        net.sim.run(until=0.03)
        completed = app.completed_queries()
        assert len(completed) >= 10
        for query in completed:
            assert query.responses == 5
            assert query.latency > 200 * units.MICROS  # compute floor

    def test_latency_includes_fanout_and_aggregation(self):
        net, metrics, app = build()
        app.start(interval=units.msec(2))
        net.sim.run(until=0.03)
        query = app.completed_queries()[0]
        # Query + compute + response: comfortably above one compute time
        # and below a millisecond on an idle 10G fabric.
        assert 200 * units.MICROS < query.latency < units.msec(1)

    def test_slo_misses_counted_under_contention(self):
        net, metrics, app = build()
        # A bulk neighbour on the same servers with a tight deadline.
        vms_b = list(range(6, 12))
        for vm in vms_b:
            net.add_vm(vm, 2, vm % 3)
        BulkApp(net, metrics, 2, all_to_all_pairs(vms_b),
                chunk_size=units.MB).start()
        app.deadline = 600 * units.MICROS
        app.start(interval=units.msec(2))
        net.sim.run(until=0.04)
        assert app.slo_miss_fraction() > 0.0

    def test_guaranteed_tenant_meets_tight_slo(self):
        net, metrics, app = build(scheme="silo", paced=True)
        app.deadline = 5 * units.MILLIS
        app.start(interval=units.msec(3))
        net.sim.run(until=0.05)
        assert app.completed_queries()
        assert app.slo_miss_fraction() == 0.0

    def test_compute_budget(self):
        _, _, app = build()
        assert app.compute_budget(4 * units.MILLIS) == pytest.approx(
            16 * units.MILLIS)
        assert app.compute_budget(units.MILLIS * 30) == 0.0

    def test_validation(self):
        net, metrics, app = build()
        with pytest.raises(ValueError):
            app.start(interval=0.0)
        with pytest.raises(ValueError):
            PartitionAggregateApp(net, metrics, 1, root_vm=0,
                                  worker_vms=[], rng=random.Random(0))
