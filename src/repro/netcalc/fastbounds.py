"""Allocation-free queue bounds for dual-rate arrival curves.

:class:`~repro.placement.state.PortState` keeps four running totals and
rebuilds a *dual-rate* aggregate curve -- ``min(peak*t + slack,
bandwidth*t + burst)`` -- for every admission probe.  Building the
:class:`~repro.netcalc.curves.Curve` costs a sort, a convex-hull sweep and
several allocations per probe, which dominates placement time at
datacenter scale (section 5's 100K-host target).

This module computes the same backlog/delay bounds *in closed form*.  The
arithmetic deliberately mirrors, operation for operation, what
``Curve([...])`` + :func:`~repro.netcalc.bounds.backlog_bound` /
:func:`~repro.netcalc.bounds.delay_bound` would do -- including the prune
epsilons, the breakpoint evaluation order and the stability test -- so the
fast path is **bit-identical** to the reference path, not merely close.
The Curve-based path stays available as a cross-check oracle
(``PortState.backlog_reference`` etc.) and the property tests in
``tests/placement/test_fast_admission.py`` assert exact agreement.
"""

from __future__ import annotations

import math
from typing import Tuple

#: Must match ``repro.netcalc.curves._EPS`` (the prune tolerance).
_EPS = 1e-12

#: Must match ``repro.netcalc.bounds._REL_TOL`` (the relative stability
#: slack) -- the fast and reference paths are asserted bit-identical.
_REL_TOL = 1e-9

_INF = math.inf


def _effective_pieces(bandwidth: float, burst: float, peak: float,
                      slack: float) -> Tuple[Tuple[float, float], ...]:
    """The pieces ``Curve`` would keep for a dual-rate aggregate.

    Replicates ``_prune([(peak, slack), (bandwidth, burst)])`` for the
    pre-conditioned inputs produced by ``PortState.aggregate_curve``
    (``slack <= burst``, ``bandwidth <= peak``).  Returns one or two
    ``(rate, burst)`` tuples ordered by decreasing rate.
    """
    if peak <= bandwidth or burst <= slack:
        return ((bandwidth, burst),)
    # _prune sorts by rate descending: [(peak, slack), (bandwidth, burst)].
    if math.isclose(peak, bandwidth, rel_tol=1e-12, abs_tol=_EPS):
        # Equal-rate dedup keeps the lower burst (the slack piece).
        return ((peak, slack),)
    if burst <= slack + _EPS:
        # The flat piece is below the steep one everywhere.
        return ((bandwidth, burst),)
    crossover = (burst - slack) / (peak - bandwidth)
    if crossover <= _EPS:
        # The steep piece's active interval is empty.
        return ((bandwidth, burst),)
    return ((peak, slack), (bandwidth, burst))


def dual_rate_backlog(bandwidth: float, burst: float, peak: float,
                      slack: float, rate: float,
                      latency: float = 0.0) -> float:
    """Worst-case backlog of a dual-rate curve at a rate-latency server.

    Equivalent to ``backlog_bound(Curve.from_pieces([(peak, slack),
    (bandwidth, burst)]), RateLatencyService(rate, latency))`` without
    constructing either object.
    """
    pieces = _effective_pieces(bandwidth, burst, peak, slack)
    if pieces[-1][0] > rate * (1.0 + _REL_TOL):
        return _INF
    if len(pieces) == 1:
        prate, pburst = pieces[0]
        # Candidates are t=0 and t=latency; the deviation at t=0 is the
        # curve's burst and at t=latency it is burst + rate*latency.
        best = pburst if pburst > 0.0 else 0.0
        dev = prate * latency + pburst
        if dev > best:
            best = dev
        return best
    (p_rate, p_slack), (b_rate, b_burst) = pieces
    crossover = (b_burst - p_slack) / (p_rate - b_rate)
    best = p_slack if p_slack > 0.0 else 0.0
    # t = latency: evaluate the piece active there (bisect semantics: the
    # flat piece takes over at t >= crossover).
    if latency >= crossover:
        arrival_at_latency = b_rate * latency + b_burst
    else:
        arrival_at_latency = p_rate * latency + p_slack
    if arrival_at_latency > best:
        best = arrival_at_latency
    # t = crossover (the only positive breakpoint).
    if crossover > 0.0:
        arrival = b_rate * crossover + b_burst
        service = 0.0 if crossover <= latency else rate * (crossover
                                                           - latency)
        dev = arrival - service
        if dev > best:
            best = dev
    return best


def dual_rate_delay(bandwidth: float, burst: float, peak: float,
                    slack: float, rate: float,
                    latency: float = 0.0) -> float:
    """Worst-case delay of a dual-rate curve at a rate-latency server.

    Equivalent to ``delay_bound(...)`` on the rebuilt Curve; see
    :func:`dual_rate_backlog`.
    """
    pieces = _effective_pieces(bandwidth, burst, peak, slack)
    if pieces[-1][0] > rate * (1.0 + _REL_TOL):
        return _INF
    if len(pieces) == 1:
        prate, pburst = pieces[0]
        best = 0.0
        dev = latency + pburst / rate
        if dev > best:
            best = dev
        dev = latency + (prate * latency + pburst) / rate - latency
        if dev > best:
            best = dev
        return best
    (p_rate, p_slack), (b_rate, b_burst) = pieces
    crossover = (b_burst - p_slack) / (p_rate - b_rate)
    best = 0.0
    dev = latency + p_slack / rate
    if dev > best:
        best = dev
    if latency >= crossover:
        arrival_at_latency = b_rate * latency + b_burst
    else:
        arrival_at_latency = p_rate * latency + p_slack
    dev = latency + arrival_at_latency / rate - latency
    if dev > best:
        best = dev
    if crossover > 0.0:
        arrival = b_rate * crossover + b_burst
        dev = latency + arrival / rate - crossover
        if dev > best:
            best = dev
    return best
