"""Pacer observability: virtual backlog and trace events.

The pacer never queues bytes physically (packets carry future
timestamps), so its "backlog" is the token-bucket deficit -- how far the
source has stamped ahead of its guarantee.  These tests pin down that
arithmetic and the ``pacer.stamp`` / ``pacer.void`` event streams.
"""

import pytest

from repro import units
from repro.obs import RingBufferSink
from repro.pacer.hierarchy import PacerConfig, VMPacer
from repro.pacer.token_bucket import TokenBucket
from repro.pacer.void_packets import VoidScheduler


class TestDeficit:
    def test_zero_when_clock_not_ahead(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        assert bucket.deficit(0.0) == 0.0
        bucket.stamp(300.0, 0.0)  # within the burst: departs at once
        assert bucket.deficit(0.0) == 0.0
        assert bucket.deficit(10.0) == 0.0

    def test_tracks_stamped_ahead_bytes(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        bucket.stamp(500.0, 0.0)   # drains the burst
        bucket.stamp(200.0, 0.0)   # deficit: clock advances to t=2
        assert bucket.deficit(0.0) == pytest.approx(200.0)
        assert bucket.deficit(1.0) == pytest.approx(100.0)
        assert bucket.deficit(2.0) == 0.0

    def test_vmpacer_backlog_is_tenant_deficit(self):
        config = PacerConfig(bandwidth=100.0, burst=500.0,
                             peak_rate=1000.0, packet_size=100.0)
        pacer = VMPacer(config)
        for _ in range(7):
            pacer.stamp("d", 100.0, 0.0)
        # 700 bytes against a 500-byte burst: 200 stamped ahead.
        assert pacer.backlog(0.0) == pytest.approx(200.0)
        assert pacer.backlog(2.0) == 0.0


class TestStampEvents:
    def make_pacer(self, sink):
        config = PacerConfig(bandwidth=100.0, burst=500.0,
                             peak_rate=1000.0, packet_size=100.0)
        return VMPacer(config, tracer=sink, source="vm3")

    def test_one_event_per_stamp_with_ask_time(self):
        sink = RingBufferSink()
        pacer = self.make_pacer(sink)
        for i in range(6):
            pacer.stamp("d", 100.0, 0.0)
        events = sink.of_kind("pacer.stamp")
        assert len(events) == 6
        # `time` is the time the caller *asked* at, pre-clamping; the
        # stamp may be later, never earlier.
        assert all(e.time == 0.0 for e in events)
        assert all(e.source == "vm3" for e in events)
        assert all(e.stamp >= e.time for e in events)
        assert [e.delay for e in events] == [e.stamp - e.time
                                             for e in events]
        assert events[-1].delay > 0  # past the burst: stamped ahead

    def test_no_tracer_no_events(self):
        pacer = self.make_pacer(None)
        assert pacer.stamp("d", 100.0, 0.0) == 0.0


class TestVoidEvents:
    def test_one_event_per_void_frame(self):
        link = units.gbps(10)
        sink = RingBufferSink()
        scheduler = VoidScheduler(link, tracer=sink, source="nic0")
        wire = 1520.0 / link
        schedule = scheduler.schedule([(0.0, 1500.0),
                                       (3 * wire, 1500.0)])
        events = sink.of_kind("pacer.void")
        assert len(events) == len(schedule.void_slots) > 0
        assert all(e.source == "nic0" for e in events)
        assert (sum(e.wire_bytes for e in events)
                == schedule.void_bytes)
