"""Piecewise-linear concave curves represented as a minimum of affine pieces.

A concave, non-decreasing, piecewise-linear function ``A`` on ``t >= 0`` can
always be written as::

    A(t) = min_i (rate_i * t + burst_i)

This representation makes the two operations network calculus needs cheap and
exact:

* **addition** -- ``min_i f_i + min_j g_j = min_{i,j} (f_i + g_j)`` for each
  fixed ``t``, so the sum is the minimum over pairwise-summed pieces;
* **minimum** -- the union of the two piece sets.

After either operation redundant pieces are pruned with a convex-hull-trick
sweep so curves stay small no matter how many tenants are aggregated.

All arrival curves in this package are instances of :class:`Curve`; see
:mod:`repro.netcalc.arrival` for the standard constructors.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

_EPS = 1e-12


@dataclass(frozen=True)
class AffinePiece:
    """One affine piece ``f(t) = rate * t + burst`` of a concave curve.

    ``rate`` is in bytes per second and ``burst`` in bytes.  ``burst`` may be
    zero (e.g. a pure rate cap) but never negative: arrival curves bound
    cumulative traffic, which is non-negative.
    """

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"piece rate must be >= 0, got {self.rate}")
        if self.burst < 0:
            raise ValueError(f"piece burst must be >= 0, got {self.burst}")

    def __call__(self, t: float) -> float:
        return self.rate * t + self.burst


def _prune(pieces: Iterable[AffinePiece]) -> List[AffinePiece]:
    """Keep only the pieces on the lower envelope ``min_i f_i``.

    Sorts by rate descending (the steepest piece is active first) and runs a
    convex-hull-trick sweep, dropping pieces that are dominated everywhere or
    whose active interval is empty.
    """
    by_rate = sorted(pieces, key=lambda p: (-p.rate, p.burst))
    # Deduplicate equal rates: only the lowest burst can ever be the minimum.
    deduped: List[AffinePiece] = []
    for piece in by_rate:
        if deduped and math.isclose(deduped[-1].rate, piece.rate,
                                    rel_tol=1e-12, abs_tol=_EPS):
            # Effectively equal rates: only the lowest burst survives.
            if piece.burst < deduped[-1].burst:
                deduped[-1] = piece
            continue
        deduped.append(piece)

    kept: List[AffinePiece] = []
    # breaks[i] is the time at which kept[i] takes over from kept[i-1].
    breaks: List[float] = []
    for piece in deduped:
        while kept:
            top = kept[-1]
            if piece.burst <= top.burst + _EPS:
                # piece has a lower rate (sorted) and a lower-or-equal burst,
                # so it is below top everywhere: top is dominated.
                kept.pop()
                breaks.pop()
                continue
            crossover = (piece.burst - top.burst) / (top.rate - piece.rate)
            if breaks and crossover <= breaks[-1] + _EPS:
                # top would take over after piece already has: never active.
                kept.pop()
                breaks.pop()
                continue
            kept.append(piece)
            breaks.append(crossover)
            break
        else:
            kept.append(piece)
            breaks.append(0.0)
    return kept


class Curve:
    """A concave non-decreasing piecewise-linear curve on ``t >= 0``.

    Instances are immutable; all operators return new curves.  Construct via
    :meth:`from_pieces` or the helpers in :mod:`repro.netcalc.arrival`.
    """

    __slots__ = ("_pieces", "_breaks")

    def __init__(self, pieces: Sequence[AffinePiece]):
        pruned = _prune(pieces)
        if not pruned:
            raise ValueError("a curve needs at least one affine piece")
        self._pieces: Tuple[AffinePiece, ...] = tuple(pruned)
        # _breaks[i]: time at which piece i becomes active (first is 0).
        breaks = [0.0]
        for prev, nxt in zip(self._pieces, self._pieces[1:]):
            breaks.append((nxt.burst - prev.burst) / (prev.rate - nxt.rate))
        self._breaks: Tuple[float, ...] = tuple(breaks)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_pieces(cls, pieces: Iterable[Tuple[float, float]]) -> "Curve":
        """Build a curve from ``(rate, burst)`` tuples."""
        return cls([AffinePiece(rate, burst) for rate, burst in pieces])

    @classmethod
    def affine(cls, rate: float, burst: float) -> "Curve":
        """A single token-bucket-shaped piece ``rate * t + burst``."""
        return cls([AffinePiece(rate, burst)])

    # -- inspection --------------------------------------------------------

    @property
    def pieces(self) -> Tuple[AffinePiece, ...]:
        """The active affine pieces, ordered by decreasing rate."""
        return self._pieces

    @property
    def breakpoints(self) -> Tuple[float, ...]:
        """Times at which the active piece changes (first entry is 0)."""
        return self._breaks

    @property
    def burst(self) -> float:
        """``A(0)``: the instantaneous burst the curve allows."""
        return min(p.burst for p in self._pieces)

    @property
    def sustained_rate(self) -> float:
        """The long-run rate of the curve (rate of the flattest piece)."""
        return self._pieces[-1].rate

    @property
    def peak_rate(self) -> float:
        """The short-run rate of the curve (rate of the steepest piece)."""
        return self._pieces[0].rate

    def __call__(self, t: float) -> float:
        """Evaluate the curve at time ``t`` (seconds)."""
        if t < 0:
            raise ValueError("curves are defined for t >= 0 only")
        idx = bisect_right(self._breaks, t) - 1
        return self._pieces[idx](t)

    def active_piece(self, t: float) -> AffinePiece:
        """The affine piece that attains the minimum at time ``t``."""
        if t < 0:
            raise ValueError("curves are defined for t >= 0 only")
        idx = bisect_right(self._breaks, t) - 1
        return self._pieces[idx]

    # -- algebra -----------------------------------------------------------

    def __add__(self, other: "Curve") -> "Curve":
        """Exact sum of two concave curves (aggregate of two sources)."""
        if not isinstance(other, Curve):
            return NotImplemented
        summed = [
            AffinePiece(p.rate + q.rate, p.burst + q.burst)
            for p in self._pieces
            for q in other._pieces
        ]
        return Curve(summed)

    def minimum(self, other: "Curve") -> "Curve":
        """Pointwise minimum (e.g. capping a source at a link rate)."""
        return Curve(list(self._pieces) + list(other._pieces))

    def scale(self, factor: float) -> "Curve":
        """Scale the whole curve: ``factor * A(t)`` (``factor > 0``)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Curve([AffinePiece(p.rate * factor, p.burst * factor)
                      for p in self._pieces])

    def shift_earlier(self, delta: float) -> "Curve":
        """Return ``t -> A(t + delta)`` for ``delta >= 0``.

        This is exactly Silo's egress-burst propagation: traffic that spent
        up to ``delta`` seconds queued inside a switch may leave bunched, so
        the egress of a port with queue capacity ``delta`` is bounded by the
        ingress curve advanced by ``delta``.
        """
        if delta < 0:
            raise ValueError("shift must be >= 0")
        return Curve([AffinePiece(p.rate, p.burst + p.rate * delta)
                      for p in self._pieces])

    # -- comparisons -------------------------------------------------------

    def dominates(self, other: "Curve", horizon: float = 10.0) -> bool:
        """True if ``self(t) >= other(t)`` on ``[0, horizon]``.

        Checked at the union of breakpoints plus the horizon, which is exact
        for piecewise-linear curves whose final pieces extend past the last
        breakpoint.
        """
        points = set(self._breaks) | set(other._breaks) | {horizon}
        return all(self(t) >= other(t) - _EPS for t in points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Curve):
            return NotImplemented
        if len(self._pieces) != len(other._pieces):
            return False
        return all(
            math.isclose(p.rate, q.rate, rel_tol=1e-9, abs_tol=1e-6)
            and math.isclose(p.burst, q.burst, rel_tol=1e-9, abs_tol=1e-6)
            for p, q in zip(self._pieces, other._pieces)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(self._pieces)

    def __repr__(self) -> str:
        body = ", ".join(f"({p.rate:.6g}*t + {p.burst:.6g})"
                         for p in self._pieces)
        return f"Curve(min[{body}])"
