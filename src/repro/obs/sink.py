"""Trace sinks: where emitted events go.

The contract is one method, ``emit(event)``; anything implementing it is a
sink (components type their hooks ``Optional[TraceSink]`` and skip the call
entirely when it is ``None`` -- that, not :class:`NullSink`, is the
zero-overhead path).  Three implementations cover the use cases:

* :class:`NullSink` -- swallows everything; for code that wants an
  unconditional sink object rather than ``None`` checks;
* :class:`RingBufferSink` -- keeps the last ``capacity`` events in memory
  (tests, interactive debugging, flight-recorder style postmortems);
* :class:`JsonlSink` -- streams one JSON object per line to a file, the
  interchange format of the ``trace`` CLI and the plotting scripts.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, IO, List, Optional, Union

from repro.obs.events import event_record

__all__ = ["TraceSink", "NullSink", "RingBufferSink", "JsonlSink"]


class TraceSink:
    """Protocol base class for event sinks."""

    def emit(self, event: Any) -> None:
        """Record one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is an error."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards every event."""

    def emit(self, event: Any) -> None:
        """Discard the event."""
        pass


class RingBufferSink(TraceSink):
    """Keeps the newest ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self.events: Deque[Any] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: Any) -> None:
        """Append the event to the ring, evicting the oldest."""
        self.events.append(event)
        self.emitted += 1

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self.events)

    def of_kind(self, kind: str) -> List[Any]:
        """Buffered events whose ``kind`` tag matches."""
        return [e for e in self.events if e.kind == kind]


class JsonlSink(TraceSink):
    """Writes one JSON object per event to a line-delimited file.

    Accepts a path (opened and owned by the sink) or an already-open
    text file object (borrowed; ``close`` only flushes it).
    """

    def __init__(self, target: Union[str, "IO[str]"]):
        if hasattr(target, "write"):
            self._file: Optional[IO[str]] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
        self.emitted = 0

    def emit(self, event: Any) -> None:
        """Write the event as one JSON line."""
        if self._file is None:
            raise ValueError("sink is closed")
        self._file.write(json.dumps(event_record(event),
                                    separators=(",", ":")) + "\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._file is None:
            return
        if self._owns:
            self._file.close()
        else:
            self._file.flush()
        self._file = None
