"""Guarantee inference from measured traces."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.netcalc.arrival import token_bucket
from repro.netcalc.inference import (
    empirical_envelope,
    envelope_curve,
    infer_guarantee,
    required_burst,
)
from repro.netcalc.trace import conforms


def bursty_trace(n_bursts=10, burst_packets=5, gap=1e-3):
    """Near-line-rate packet bursts separated by idle gaps."""
    trace = []
    t = 0.0
    for _ in range(n_bursts):
        for i in range(burst_packets):
            trace.append((t + i * 1e-5, 1500.0))
        t += gap
    return trace


class TestRequiredBurst:
    def test_at_zero_rate_burst_is_total(self):
        trace = [(0.0, 100.0), (1.0, 100.0)]
        assert required_burst(trace, 0.0) == pytest.approx(200.0)

    def test_at_high_rate_burst_is_one_packet(self):
        trace = [(i * 1.0, 100.0) for i in range(10)]
        assert required_burst(trace, 1e9) == pytest.approx(100.0)

    def test_monotone_nonincreasing_in_rate(self):
        trace = bursty_trace()
        bursts = [required_burst(trace, r)
                  for r in (0.0, 1e5, 1e6, 1e7, 1e9)]
        assert bursts == sorted(bursts, reverse=True)

    def test_interior_window_dominates(self):
        # Quiet start, then a hot window: the envelope must see it.
        trace = [(0.0, 100.0), (10.0, 5000.0), (10.001, 5000.0)]
        assert required_burst(trace, 1000.0) >= 9000.0

    def test_conformance_round_trip(self):
        trace = bursty_trace()
        for rate in (1e5, 1e6, 1e7):
            burst = required_burst(trace, rate)
            assert conforms(trace, token_bucket(rate, burst),
                            tolerance=1.0)
            if burst > 1500.0:
                # One packet less and it must NOT conform.
                assert not conforms(trace,
                                    token_bucket(rate, burst - 1400.0),
                                    tolerance=1.0)


class TestEnvelope:
    def test_envelope_curve_dominates_trace(self):
        trace = bursty_trace()
        curve = envelope_curve(trace, [1e5, 1e6, 1e7])
        assert conforms(trace, curve, tolerance=1.0)

    def test_points_ordered(self):
        points = empirical_envelope(bursty_trace(), [1e6, 1e5, 1e7])
        assert [p.rate for p in points] == [1e5, 1e6, 1e7]

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            empirical_envelope(bursty_trace(), [])


class TestInferGuarantee:
    def test_inferred_guarantee_covers_trace(self):
        trace = bursty_trace()
        guarantee = infer_guarantee(trace, delay=units.msec(1),
                                    peak_rate=units.gbps(1))
        assert conforms(trace, token_bucket(guarantee.bandwidth,
                                            guarantee.burst),
                        tolerance=1.0)
        assert guarantee.wants_delay

    def test_headroom_scales_rate(self):
        trace = bursty_trace()
        lean = infer_guarantee(trace, headroom=1.0)
        fat = infer_guarantee(trace, headroom=2.0)
        assert fat.bandwidth == pytest.approx(2 * lean.bandwidth)
        assert fat.burst <= lean.burst

    def test_max_burst_cap_raises_rate(self):
        trace = bursty_trace()
        free = infer_guarantee(trace)
        capped = infer_guarantee(trace, max_burst=free.burst / 2)
        assert capped.burst <= free.burst / 2 + 1.0
        assert capped.bandwidth > free.bandwidth
        assert conforms(trace, token_bucket(capped.bandwidth,
                                            capped.burst),
                        tolerance=1500.0 + 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            infer_guarantee([])
        with pytest.raises(ValueError):
            infer_guarantee(bursty_trace(), headroom=0.5)
        with pytest.raises(ValueError):
            required_burst([(0.0, 1.0)], -1.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10.0),
                          st.floats(min_value=1.0, max_value=1e4)),
                min_size=2, max_size=60),
       st.floats(min_value=0.0, max_value=1e5))
def test_property_required_burst_always_conforms(raw, rate):
    trace = sorted(((t, s) for t, s in raw), key=lambda e: e[0])
    burst = required_burst(trace, rate)
    assert conforms(trace, token_bucket(rate, max(burst, 1.0)),
                    tolerance=1.0)
