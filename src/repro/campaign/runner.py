"""Parallel, resumable execution of sweep specs.

The runner fans a :class:`~repro.campaign.spec.SweepSpec` out across
worker processes and produces, per campaign directory::

    spec.json        the spec that ran (written before any cell)
    cells/<id>.json  one checkpoint per finished cell (atomic rename)
    artifacts/<id>/  per-cell artifact files (obs sinks, CSVs)
    manifest.json    cell -> checkpoint/artifact map, in commit order
    merged.json      every cell's params + result, in commit order

Determinism contract: a cell's result depends only on its parameters
and seed -- the runner resets the process-global tenant-id counter
before each cell and workers are fresh ``spawn`` processes, so cells
cannot see each other's interpreter state.  The merge stage reads
checkpoints strictly in spec commit order.  Together these make the
``manifest.json``/``merged.json`` of an N-worker run byte-identical to
the serial (``workers=0``) run, for any N and any completion order.

Crash recovery: checkpoints are written with write-to-temp +
``os.replace``, so a killed run leaves only whole cells behind.
Re-running with ``resume=True`` re-executes exactly the cells whose
checkpoint is missing or stale (cell ids digest the scenario, params
and seed, so editing the spec invalidates old checkpoints) and then
merges as usual -- the resumed merged output is identical to an
uninterrupted run's.
"""

from __future__ import annotations

import contextlib
import inspect
import json
import multiprocessing
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.campaign.registry import get_scenario, import_scenario_modules
from repro.campaign.spec import Cell, SweepSpec
from repro.core.tenant import reset_tenant_ids

__all__ = ["CellRecord", "CampaignResult", "CellTimeout", "run_campaign"]

#: JSON formatting shared by every campaign file; fixed so byte identity
#: is a property of the data alone.
_JSON_KW = dict(sort_keys=True, indent=1)


class CellTimeout(RuntimeError):
    """A cell exceeded the campaign's per-cell wall-clock budget."""


@dataclass
class CellRecord:
    """One finished cell: its identity, result and artifact files.

    A cell that failed (timed out or raised) carries ``error`` instead
    of a meaningful ``result``; failed cells are never checkpointed, so
    a resumed run retries them.
    """

    cell: Cell
    result: Any
    artifacts: List[str] = field(default_factory=list)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Checkpoint/merge representation of this record."""
        payload = {
            "id": self.cell.cell_id,
            "index": self.cell.index,
            "scenario": self.cell.scenario,
            "params": dict(self.cell.params),
            "seed": self.cell.seed,
            "result": self.result,
            "artifacts": list(self.artifacts),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


@dataclass
class CampaignResult:
    """Everything a finished (or interrupted) campaign produced."""

    spec: SweepSpec
    records: List[CellRecord]
    out: Optional[Path] = None
    #: True when ``max_cells`` stopped the run before every cell ran
    #: (no manifest/merged files are written for a partial run).
    partial: bool = False
    #: Cells executed by *this* invocation (resume skips checkpointed
    #: ones; the difference is what a progress report shows).
    executed: int = 0
    #: Records of cells that failed (timeout or scenario error).  A
    #: campaign with failures is reported ``partial`` and writes no
    #: merge outputs; failed cells have no checkpoint, so resuming
    #: retries exactly them.
    failed: List[CellRecord] = field(default_factory=list)

    def results(self) -> List[Any]:
        """Cell results in commit order."""
        return [record.result for record in self.records]

    def get(self, seed: Optional[int] = None, **axes: Any) -> Any:
        """The result of the unique cell matching ``axes`` (and ``seed``).

        ``axes`` match against the cell's parameters (fixed parameters
        included); raises if no cell or more than one matches.
        """
        matches = [r for r in self.records
                   if all(dict(r.cell.params).get(k) == v
                          for k, v in axes.items())
                   and (seed is None or r.cell.seed == seed)]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} cells match {axes} "
                           f"seed={seed}")
        return matches[0].result


# ---------------------------------------------------------------------------
# Cell execution (shared by the serial path and pool workers)
# ---------------------------------------------------------------------------

def _wants_artifact_dir(fn: Callable[..., Any]) -> bool:
    """Whether the scenario accepts an ``artifact_dir`` keyword."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins/C callables: be permissive
        return False
    if "artifact_dir" in params:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in params.values())


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Write JSON so a kill mid-write can never leave a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, **_JSON_KW) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


@contextlib.contextmanager
def _alarm(timeout: Optional[float]):
    """Raise :class:`CellTimeout` inside the block after ``timeout``
    wall-clock seconds (SIGALRM; a no-op when ``timeout`` is None).

    Works in the serial path and inside pool workers alike: both run
    cells on their process's main thread, the only place Python
    delivers SIGALRM.
    """
    if timeout is None:
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {timeout:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_cell(cell: Cell, out: Optional[Path],
                  timeout: Optional[float] = None) -> CellRecord:
    """Run one cell: reset globals, call the scenario, checkpoint.

    A cell that outruns ``timeout`` comes back as a *failed* record
    (``error`` set, no checkpoint written) instead of hanging the
    campaign; any other scenario exception still propagates.
    """
    reset_tenant_ids()
    fn = get_scenario(cell.scenario)
    kwargs = cell.kwargs
    kwargs["seed"] = cell.seed
    artifacts: List[str] = []
    artifact_dir: Optional[Path] = None
    if out is not None and _wants_artifact_dir(fn):
        artifact_dir = out / "artifacts" / cell.cell_id
        artifact_dir.mkdir(parents=True, exist_ok=True)
        kwargs["artifact_dir"] = str(artifact_dir)
    try:
        with _alarm(timeout):
            result = fn(**kwargs)
    except CellTimeout as exc:
        return CellRecord(cell=cell, result=None, artifacts=[],
                          error=f"timeout: {exc}")
    except Exception as exc:
        raise RuntimeError(f"campaign cell failed: {cell.describe()}"
                           ) from exc
    if artifact_dir is not None:
        artifacts = sorted(
            str(p.relative_to(out).as_posix())
            for p in artifact_dir.rglob("*") if p.is_file())
    record = CellRecord(cell=cell, result=result, artifacts=artifacts)
    if out is not None:
        cells_dir = out / "cells"
        cells_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(cells_dir / f"{cell.cell_id}.json",
                           record.to_dict())
    return record


def _load_checkpoint(cell: Cell, out: Path) -> Optional[CellRecord]:
    """A valid checkpoint for exactly this cell, or None."""
    path = out / "cells" / f"{cell.cell_id}.json"
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if data.get("id") != cell.cell_id:
        return None
    return CellRecord(cell=cell, result=data.get("result"),
                      artifacts=list(data.get("artifacts", [])))


# -- worker-process entry points (module-level so spawn can pickle them) ----

def _worker_init(modules: Sequence[str],
                 module_paths: Sequence[str]) -> None:
    """Pool initializer: make the spec's scenarios importable here."""
    import_scenario_modules(modules, module_paths)


def _worker_run(task: Tuple[Cell, Optional[str], Optional[float]]
                ) -> Tuple[int, Any, List[str], Optional[str]]:
    """Pool task: run one cell, checkpoint it, ship the result back."""
    cell, out, timeout = task
    record = _execute_cell(cell, Path(out) if out else None,
                           timeout=timeout)
    return cell.index, record.result, record.artifacts, record.error


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------

def _write_merge_outputs(spec: SweepSpec, out: Path,
                         records: Sequence[CellRecord]) -> None:
    """Write manifest.json + merged.json from commit-ordered records."""
    manifest = {
        "name": spec.name,
        "scenario": spec.scenario,
        "spec": spec.to_dict(),
        "cells": [
            {
                "id": r.cell.cell_id,
                "index": r.cell.index,
                "params": dict(r.cell.params),
                "seed": r.cell.seed,
                "checkpoint": f"cells/{r.cell.cell_id}.json",
                "artifacts": list(r.artifacts),
            }
            for r in records
        ],
    }
    _atomic_write_json(out / "manifest.json", manifest)
    merged = {
        "name": spec.name,
        "scenario": spec.scenario,
        "cells": [r.to_dict() for r in records],
    }
    _atomic_write_json(out / "merged.json", merged)


def run_campaign(spec: SweepSpec,
                 out: Optional[os.PathLike] = None,
                 workers: int = 0,
                 resume: bool = False,
                 max_cells: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 cell_timeout: Optional[float] = None
                 ) -> CampaignResult:
    """Run every cell of ``spec`` and merge the results.

    ``workers=0`` runs serially in-process (results may then be any
    Python object -- the benchmark fixtures rely on this); ``workers
    >= 1`` fans cells out over that many fresh ``spawn`` worker
    processes, which requires results to be picklable and, for
    checkpointing, JSON-serializable.  ``out`` enables the on-disk
    layout (checkpoints, artifacts, manifest, merged); without it the
    run is purely in-memory.  ``resume`` skips cells with a valid
    checkpoint.  ``max_cells`` stops after that many *newly executed*
    cells -- the hook the tests and tutorial use to simulate a crash
    mid-campaign -- leaving a partial, resumable directory behind.

    ``cell_timeout`` bounds each cell's wall-clock seconds: a cell that
    outruns it is recorded as *failed* (``result.failed``) instead of
    hanging the campaign -- the run completes, is marked partial, and
    writes no merge outputs; the failed cells have no checkpoint so
    ``resume`` retries exactly them.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError("cell_timeout must be positive")
    if max_cells is not None and out is None:
        raise ValueError("max_cells (simulated crash) needs an out dir "
                         "to leave checkpoints in")
    import_scenario_modules(spec.modules, spec.module_paths)
    out_path: Optional[Path] = None
    if out is not None:
        out_path = Path(out)
        out_path.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(out_path / "spec.json", spec.to_dict())

    cells = list(spec.cells())
    done: Dict[int, CellRecord] = {}
    if resume and out_path is not None:
        for cell in cells:
            record = _load_checkpoint(cell, out_path)
            if record is not None:
                done[cell.index] = record
    todo = [cell for cell in cells if cell.index not in done]
    if max_cells is not None:
        todo = todo[:max_cells]
    if progress is not None and done:
        progress(f"resume: {len(done)}/{len(cells)} cells already "
                 f"checkpointed")

    executed = 0
    failed: Dict[int, CellRecord] = {}

    def _commit(record: CellRecord) -> None:
        nonlocal executed
        executed += 1
        if record.error is not None:
            failed[record.cell.index] = record
        else:
            done[record.cell.index] = record
        if progress is not None:
            state = "FAILED" if record.error is not None else "done"
            progress(f"cell {executed}/{len(todo)} {state}: "
                     f"{record.cell.describe()}")

    if workers == 0 or not todo:
        for cell in todo:
            _commit(_execute_cell(cell, out_path, timeout=cell_timeout))
    else:
        context = multiprocessing.get_context("spawn")
        tasks = [(cell, str(out_path) if out_path else None,
                  cell_timeout)
                 for cell in todo]
        by_index = {cell.index: cell for cell in todo}
        with context.Pool(processes=min(workers, len(todo)),
                          initializer=_worker_init,
                          initargs=(tuple(spec.modules),
                                    tuple(spec.module_paths))) as pool:
            for index, result, artifacts, error in pool.imap_unordered(
                    _worker_run, tasks):
                _commit(CellRecord(cell=by_index[index], result=result,
                                   artifacts=artifacts, error=error))

    partial = len(done) < len(cells)
    records = [done[cell.index] for cell in cells if cell.index in done]
    failed_records = [failed[cell.index] for cell in cells
                      if cell.index in failed]
    if out_path is not None and not partial:
        _write_merge_outputs(spec, out_path, records)
    return CampaignResult(spec=spec, records=records, out=out_path,
                          partial=partial, executed=executed,
                          failed=failed_records)
