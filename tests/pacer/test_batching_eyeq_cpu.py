"""Paced IO batching, hose coordination and the CPU model."""

import math

import pytest

from repro import units
from repro.pacer.batching import PacedBatcher
from repro.pacer.cpu_model import PacerCpuModel
from repro.pacer.eyeq import allocate_hose_rates, receiver_fair_split
from repro.pacer.void_packets import VoidScheduler


class TestPacedBatcher:
    def test_batches_bounded_by_window(self):
        link = units.gbps(10)
        batcher = PacedBatcher(link, batch_window=50 * units.MICROS)
        interval = 1520 / units.gbps(2)
        packets = [(i * interval, units.MTU) for i in range(200)]
        batches = batcher.build(packets)
        assert len(batches) > 1
        for batch in batches:
            assert batch.duration <= 50 * units.MICROS + 1e-9

    def test_batches_do_not_overlap(self):
        batcher = PacedBatcher(units.gbps(10))
        interval = 1520 / units.gbps(2)
        packets = [(i * interval, units.MTU) for i in range(200)]
        batches = batcher.build(packets)
        for first, second in zip(batches, batches[1:]):
            assert second.start_time >= first.end_time - 1e-12

    def test_all_data_packets_survive_carving(self):
        batcher = PacedBatcher(units.gbps(10))
        interval = 1520 / units.gbps(1)
        packets = [(i * interval, units.MTU) for i in range(100)]
        batches = batcher.build(packets)
        assert sum(b.data_packets for b in batches) == 100

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PacedBatcher(units.gbps(10), batch_window=0.0)


class TestHoseAllocation:
    def test_receiver_fair_split(self):
        assert receiver_fair_split(4, units.gbps(1)) == pytest.approx(
            units.gbps(0.25))
        with pytest.raises(ValueError):
            receiver_fair_split(0, 1.0)

    def test_all_to_one_splits_receiver_hose(self):
        demands = {(s, "r"): math.inf for s in range(4)}
        hoses = {"r": 100.0, 0: 100.0, 1: 100.0, 2: 100.0, 3: 100.0}
        rates = allocate_hose_rates(demands, hoses)
        for s in range(4):
            assert rates[(s, "r")] == pytest.approx(25.0)

    def test_sender_hose_limits_fanout(self):
        demands = {("s", d): math.inf for d in range(5)}
        hoses = {"s": 100.0, **{d: 100.0 for d in range(5)}}
        rates = allocate_hose_rates(demands, hoses)
        assert sum(rates.values()) == pytest.approx(100.0)

    def test_finite_demands_respected(self):
        demands = {("a", "b"): 10.0, ("a", "c"): math.inf}
        hoses = {"a": 100.0, "b": 100.0, "c": 100.0}
        rates = allocate_hose_rates(demands, hoses)
        assert rates[("a", "b")] == pytest.approx(10.0)
        assert rates[("a", "c")] == pytest.approx(90.0)

    def test_unknown_vm_raises(self):
        with pytest.raises(KeyError):
            allocate_hose_rates({("x", "y"): 1.0}, {"x": 1.0})

    def test_negative_demand_raises(self):
        hoses = {"a": 100.0, "b": 100.0}
        with pytest.raises(ValueError, match="demand"):
            allocate_hose_rates({("a", "b"): -1.0}, hoses)

    def test_negative_send_guarantee_raises(self):
        with pytest.raises(ValueError, match="send guarantee"):
            allocate_hose_rates({("a", "b"): 1.0},
                                {"a": -100.0, "b": 100.0})

    def test_negative_recv_guarantee_raises(self):
        with pytest.raises(ValueError, match="receive guarantee"):
            allocate_hose_rates({("a", "b"): 1.0},
                                {"a": 100.0, "b": 100.0},
                                {"a": 100.0, "b": -100.0})


class TestCpuModel:
    def test_cost_monotone_in_packet_rate(self):
        model = PacerCpuModel()
        assert model.cores(1e6, 0.0) > model.cores(5e5, 0.0)
        assert model.cores(1e6, 1e6) > model.cores(1e6, 0.0)

    def test_void_frames_cost_less_than_data(self):
        model = PacerCpuModel()
        assert model.cores(0.0, 8e5) < model.cores(8e5, 0.0)

    def test_sample_peaks_before_line_rate(self):
        """Fig 10a's shape: total packet rate (and so CPU) peaks around
        9 Gbps where voids are smallest and most numerous."""
        model = PacerCpuModel()
        link = units.gbps(10)
        nine = model.sample_rate_limit(units.gbps(9), link)
        five = model.sample_rate_limit(units.gbps(5), link)
        ten = model.sample_rate_limit(link, link)
        assert nine.cores > five.cores
        assert nine.cores > ten.cores
        assert nine.total_pps > ten.total_pps

    def test_sample_rates_track_limit(self):
        model = PacerCpuModel()
        link = units.gbps(10)
        sample = model.sample_rate_limit(units.gbps(4), link)
        # data_rate is a wire rate (frame overhead included).
        assert sample.data_rate == pytest.approx(units.gbps(4), rel=0.02)

    def test_validation(self):
        model = PacerCpuModel()
        with pytest.raises(ValueError):
            model.cores(-1.0, 0.0)
        with pytest.raises(ValueError):
            model.sample_rate_limit(units.gbps(11), units.gbps(10))
