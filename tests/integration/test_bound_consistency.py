"""Consistency between the three layers of queue analysis.

The repo computes switch queuing three ways: the paper's illustrative
burst-only arithmetic (`repro.analysis.burst`), the rigorous per-port
admission bound (`repro.placement.state`), and the actual packet-level
simulation (`repro.phynet`).  Soundness means they nest: illustrative
<= rigorous, and simulated <= rigorous for admitted (conforming)
tenants.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.analysis.burst import burst_convergence
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import EpochBurstApp
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology
from repro.workloads import Fixed


def topo(buffer_kb=312):
    return TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10),
                        buffer_bytes=buffer_kb * units.KB)


guarantee_params = st.tuples(
    st.integers(min_value=4, max_value=12),          # n_vms
    st.floats(min_value=100, max_value=1000),        # Mbps
    st.floats(min_value=2, max_value=30),            # burst KB
    st.floats(min_value=0.5, max_value=10),          # Bmax Gbps
)


@settings(max_examples=30, deadline=None)
@given(guarantee_params)
def test_illustrative_burst_never_exceeds_rigorous_bound(params):
    """The Fig. 5 arithmetic is a lower bound on the admission math.

    For every port of an admitted tenant, the burst-only convergence
    backlog must not exceed the rigorous curve-based backlog the manager
    enforces, because the rigorous aggregate additionally carries the
    sustained-bandwidth and upstream-bunching terms.
    """
    n_vms, mbps, burst_kb, bmax = params
    bandwidth = units.mbps(mbps)
    guarantee = NetworkGuarantee(
        bandwidth=bandwidth, burst=burst_kb * units.KB,
        delay=units.msec(2),
        peak_rate=max(units.gbps(bmax), bandwidth))
    manager = SiloPlacementManager(topo(buffer_kb=2000))
    request = TenantRequest(n_vms=n_vms, guarantee=guarantee,
                            tenant_class=TenantClass.CLASS_A)
    placement = manager.place(request)
    if placement is None or len(set(placement.vm_servers)) < 2:
        return  # nothing crosses the network
    assignment = placement.vms_per_server()
    for port_burst in burst_convergence(manager.topology, assignment,
                                        guarantee):
        state = manager.states[port_burst.port.port_id]
        assert (port_burst.backlog_bytes
                <= state.backlog() + units.MTU + 1e-6)


class TestSimulationWithinBound:
    def test_simulated_queues_stay_inside_admission_backlog(self):
        """Drive an admitted tenant's worst case at packet level: every
        port's observed max queue must stay within the rigorous bound."""
        manager = SiloPlacementManager(topo())
        guarantee = NetworkGuarantee(bandwidth=units.mbps(400),
                                     burst=15 * units.KB,
                                     delay=units.msec(1),
                                     peak_rate=units.gbps(1))
        request = TenantRequest(n_vms=8, guarantee=guarantee,
                                tenant_class=TenantClass.CLASS_A)
        placement = manager.place(request)
        assert placement is not None

        net = PacketNetwork(manager.topology, scheme="silo")
        for vm, server in enumerate(placement.vm_servers):
            net.add_vm(vm, request.tenant_id, server,
                       guarantee=guarantee, paced=True)
        metrics = MetricsCollector()
        app = EpochBurstApp(net, metrics, request.tenant_id,
                            list(range(8)), Fixed(15 * units.KB),
                            epoch=units.msec(3), rng=random.Random(3),
                            jitter=units.MICROS)
        app.start(phase=0.0)
        net.sim.run(until=0.05)
        assert metrics.latencies(request.tenant_id)
        for port_id, sim_port in net.ports.items():
            bound = manager.states[port_id].backlog()
            assert sim_port.stats.max_queue_bytes <= bound + units.MTU
