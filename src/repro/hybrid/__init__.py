"""Hybrid-fidelity simulation: packet foreground, fluid background.

See :mod:`repro.hybrid.sim` for the coupling model and
:mod:`repro.hybrid.recorder` for the residual-capacity feed.
"""

from repro.hybrid.recorder import PortUsageRecorder
from repro.hybrid.sim import (
    RESIDUAL_FLOOR,
    ForegroundTenant,
    HybridResult,
    HybridSim,
)

__all__ = [
    "RESIDUAL_FLOOR",
    "ForegroundTenant",
    "HybridResult",
    "HybridSim",
    "PortUsageRecorder",
]
