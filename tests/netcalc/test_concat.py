"""Min-plus concatenation and pay-bursts-only-once."""

import math

import pytest

from repro.netcalc.arrival import token_bucket
from repro.netcalc.concat import (
    concatenate,
    end_to_end_delay_bound,
    per_hop_delay_sum,
)
from repro.netcalc.service import RateLatencyService, constant_rate


class TestConcatenate:
    def test_closed_form(self):
        chain = concatenate([RateLatencyService(10.0, 1.0),
                             RateLatencyService(5.0, 2.0),
                             RateLatencyService(20.0, 0.5)])
        assert chain.rate == 5.0
        assert chain.latency == pytest.approx(3.5)

    def test_single_hop_identity(self):
        single = RateLatencyService(7.0, 0.25)
        chain = concatenate([single])
        assert chain.rate == single.rate
        assert chain.latency == single.latency

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])


class TestPayBurstsOnlyOnce:
    def test_e2e_bound_is_burst_over_bottleneck_plus_latencies(self):
        arrival = token_bucket(2.0, 100.0)
        services = [constant_rate(10.0), constant_rate(5.0),
                    constant_rate(10.0)]
        bound = end_to_end_delay_bound(arrival, services)
        assert bound == pytest.approx(100.0 / 5.0)

    def test_e2e_never_worse_than_per_hop_sum(self):
        arrival = token_bucket(2.0, 100.0)
        services = [constant_rate(10.0), constant_rate(5.0),
                    constant_rate(10.0)]
        capacities = [5.0, 10.0, 5.0]
        e2e = end_to_end_delay_bound(arrival, services)
        naive = per_hop_delay_sum(arrival, services, capacities)
        assert e2e <= naive

    def test_per_hop_sum_includes_burst_inflation(self):
        """Each hop's inflated burst raises downstream bounds, so the sum
        strictly exceeds the same chain without inflation."""
        arrival = token_bucket(2.0, 100.0)
        services = [constant_rate(10.0), constant_rate(10.0)]
        inflated = per_hop_delay_sum(arrival, services, [10.0, 10.0])
        uninflated = per_hop_delay_sum(arrival, services, [0.0, 0.0])
        assert inflated > uninflated

    def test_unstable_chain_is_infinite(self):
        arrival = token_bucket(8.0, 10.0)
        services = [constant_rate(10.0), constant_rate(5.0)]
        assert end_to_end_delay_bound(arrival, services) == math.inf

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            per_hop_delay_sum(token_bucket(1.0, 1.0),
                              [constant_rate(10.0)], [1.0, 2.0])
