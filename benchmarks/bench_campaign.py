"""Campaign-runner harness: byte identity, crash recovery, scaling.

Exercises the three promises `repro.campaign` makes and records the
measurements to ``BENCH_campaign.json``:

* **identity** -- 2-worker and 8-worker runs of the fig15 and
  failure-recovery grids merge byte-identically to the serial run at
  equal seeds;
* **kill/resume** -- a real ``SIGKILL`` of a parallel CLI campaign
  mid-flight leaves only whole checkpoints, and ``--resume`` completes
  to the same bytes as an uninterrupted serial run;
* **speedup** -- wall-clock of the fig16 grid, serial vs 8 workers.
  The >=3x floor is asserted only when the machine actually has >= 8
  usable CPUs (``os.sched_getaffinity``); the CPU count is recorded
  either way, so a 1-CPU container produces an honest sub-1x number
  instead of a vacuous pass.

Run::

    PYTHONPATH=src python benchmarks/bench_campaign.py           # full
    PYTHONPATH=src python benchmarks/bench_campaign.py --quick   # <60 s

Quick mode runs the identity check on the fig15-micro grid only and
skips the timing floor; a quick run never overwrites the committed
baseline JSON.
"""

from __future__ import annotations

import argparse
import filecmp
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.campaign.registry import get_sweep
from repro.campaign.runner import run_campaign

#: The files whose bytes define a campaign's merged output.
MERGE_FILES = ("manifest.json", "merged.json")

#: Worker counts the identity section compares against serial.
IDENTITY_WORKERS = (2, 8)


def _merged_identical(a: Path, b: Path) -> bool:
    """Whether two campaign dirs merged to byte-identical outputs."""
    return all(filecmp.cmp(a / name, b / name, shallow=False)
               for name in MERGE_FILES)


def _timed_run(spec, out: Path, workers: int) -> float:
    """Run the spec into ``out``; returns wall-clock seconds."""
    start = time.perf_counter()
    run_campaign(spec, out=out, workers=workers)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Identity: N workers == serial, byte for byte
# ---------------------------------------------------------------------------

def bench_identity(quick: bool) -> dict:
    """Serial vs 2- and 8-worker merges of the acceptance grids."""
    grids = ("fig15-micro",) if quick else ("fig15", "failure-recovery")
    rows = []
    for name in grids:
        spec = get_sweep(name)
        root = Path(tempfile.mkdtemp(prefix=f"bench-campaign-{name}-"))
        try:
            serial_s = _timed_run(spec, root / "serial", workers=0)
            row = {"grid": name, "cells": len(spec),
                   "serial_s": round(serial_s, 3), "workers": []}
            for workers in IDENTITY_WORKERS:
                elapsed = _timed_run(spec, root / f"w{workers}", workers)
                identical = _merged_identical(root / "serial",
                                              root / f"w{workers}")
                assert identical, (
                    f"{name}: {workers}-worker merge differs from serial")
                row["workers"].append({"n": workers,
                                       "wall_s": round(elapsed, 3),
                                       "identical": identical})
            rows.append(row)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return {"grids": rows}


# ---------------------------------------------------------------------------
# Crash recovery: SIGKILL a real CLI campaign, resume, compare bytes
# ---------------------------------------------------------------------------

#: Grid the kill test interrupts -- big enough that checkpoints appear
#: well before the run finishes, small enough to stay seconds-scale.
KILL_GRID = "fig16-micro"

#: Checkpoints to wait for before killing; >=1 proves the kill landed
#: mid-campaign, not before any work happened.
KILL_AFTER_CHECKPOINTS = 2

#: Give up waiting for checkpoints after this long (worker cold start
#: on a loaded machine).
KILL_WAIT_S = 120.0


def _spawn_cli_campaign(out: Path, resume: bool = False
                        ) -> subprocess.Popen:
    argv = [sys.executable, "-m", "repro", "campaign", "--name",
            KILL_GRID, "--workers", "2", "--out", str(out)]
    if resume:
        argv.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(_REPO / "src"), env.get("PYTHONPATH")) if p)
    # Own session/process group so SIGKILL reaps the pool workers too.
    return subprocess.Popen(argv, env=env, start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def bench_kill_resume() -> dict:
    """Kill -9 a 2-worker CLI campaign mid-run; resume; diff vs serial."""
    spec = get_sweep(KILL_GRID)
    root = Path(tempfile.mkdtemp(prefix="bench-campaign-kill-"))
    try:
        run_campaign(spec, out=root / "serial", workers=0)

        out = root / "killed"
        proc = _spawn_cli_campaign(out)
        cells_dir = out / "cells"
        deadline = time.monotonic() + KILL_WAIT_S
        while time.monotonic() < deadline:
            done = (len(list(cells_dir.glob("*.json")))
                    if cells_dir.is_dir() else 0)
            if done >= KILL_AFTER_CHECKPOINTS or proc.poll() is not None:
                break
            time.sleep(0.02)
        finished_first = proc.poll() is not None
        if not finished_first:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
        checkpoints = len(list(cells_dir.glob("*.json")))
        assert not finished_first, (
            f"{KILL_GRID} finished before the kill landed; grid too small"
            f" for this machine")
        assert checkpoints >= 1, "killed before any checkpoint was written"
        assert checkpoints < len(spec), "kill landed after the last cell"
        assert not (out / "manifest.json").exists(), (
            "a killed run must not leave a manifest behind")

        resume = _spawn_cli_campaign(out, resume=True)
        assert resume.wait() == 0, "resume run failed"
        identical = _merged_identical(root / "serial", out)
        assert identical, "resumed merge differs from uninterrupted serial"
        return {"grid": KILL_GRID, "cells": len(spec),
                "checkpoints_at_kill": checkpoints,
                "resumed_identical": identical}
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# Scaling: the fig16 grid, serial vs 8 workers
# ---------------------------------------------------------------------------

#: Wall-clock floor demanded of 8 workers on the fig16 grid -- but only
#: on machines with >= SPEEDUP_MIN_CPUS usable CPUs; below that the
#: measurement is recorded without a floor (you cannot buy parallel
#: speedup from one core).
SPEEDUP_FLOOR = 3.0
SPEEDUP_MIN_CPUS = 8


def bench_speedup() -> dict:
    """Time the full fig16 grid serial vs 8 workers."""
    spec = get_sweep("fig16")
    cpus = len(os.sched_getaffinity(0))
    root = Path(tempfile.mkdtemp(prefix="bench-campaign-speedup-"))
    try:
        serial_s = _timed_run(spec, root / "serial", workers=0)
        workers_s = _timed_run(spec, root / "w8", workers=8)
        identical = _merged_identical(root / "serial", root / "w8")
        assert identical, "fig16 8-worker merge differs from serial"
        speedup = serial_s / workers_s
        asserted = cpus >= SPEEDUP_MIN_CPUS
        if asserted:
            assert speedup >= SPEEDUP_FLOOR, (
                f"fig16 8-worker speedup {speedup:.2f}x below "
                f"{SPEEDUP_FLOOR}x floor on {cpus} CPUs")
        return {"grid": "fig16", "cells": len(spec), "cpus": cpus,
                "serial_s": round(serial_s, 3),
                "workers8_s": round(workers_s, 3),
                "speedup": round(speedup, 2),
                "floor": SPEEDUP_FLOOR, "floor_asserted": asserted,
                "identical": identical}
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------


def run(quick: bool, out: Path) -> dict:
    """Run the sections, print a summary, write the JSON report."""
    report = {"quick": quick, "identity": bench_identity(quick)}
    if not quick:
        report["kill_resume"] = bench_kill_resume()
        report["speedup"] = bench_speedup()

    for row in report["identity"]["grids"]:
        marks = " ".join(f"{w['n']}w={w['wall_s']:.2f}s" +
                         ("=" if w["identical"] else "!")
                         for w in row["workers"])
        print(f"identity  {row['grid']:18s} {row['cells']:3d} cells  "
              f"serial={row['serial_s']:.2f}s  {marks}")
    if not quick:
        kr = report["kill_resume"]
        print(f"kill      {kr['grid']:18s} killed at "
              f"{kr['checkpoints_at_kill']}/{kr['cells']} checkpoints, "
              f"resume identical={kr['resumed_identical']}")
        sp = report["speedup"]
        floor = (f">= {sp['floor']}x floor"
                 if sp["floor_asserted"]
                 else f"floor waived ({sp['cpus']} CPUs)")
        print(f"speedup   {sp['grid']:18s} serial={sp['serial_s']:.1f}s "
              f"8 workers={sp['workers8_s']:.1f}s -> "
              f"{sp['speedup']:.2f}x ({floor})")

    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    return report


def main(argv=None) -> None:
    """CLI entry: ``--quick`` for CI, full mode refreshes the baseline."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="identity on the micro grid only; no timing "
                             "floors")
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_campaign.json, full mode only -- a "
                             "quick run never overwrites the baseline)")
    args = parser.parse_args(argv)
    out = args.out
    if out is None and not args.quick:
        out = _REPO / "BENCH_campaign.json"
    run(args.quick, out)


if __name__ == "__main__":
    main()
