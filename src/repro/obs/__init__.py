"""Observability: event tracing and time-series metrics.

A zero-overhead-when-disabled instrumentation layer shared by the packet
simulator (:mod:`repro.phynet`), the fluid simulator
(:mod:`repro.flowsim`), the pacing stack (:mod:`repro.pacer`) and
admission control (:mod:`repro.placement`).  Components hold an optional
:class:`TraceSink` / :class:`TimeSeries` reference that defaults to
``None`` and guard every emission with a single ``is not None`` test, so
un-instrumented runs pay one pointer check per hook -- the
``benchmarks/bench_hotpaths.py`` floors are asserted with tracing off.

See DESIGN.md ("Observability layer") for the event schema and the
overhead contract, and ``python -m repro trace --help`` for the CLI.
"""

from repro.obs.events import (
    EVENT_KINDS,
    AdmissionDecision,
    FlowFinish,
    FlowStart,
    PacerStamp,
    PacketDrop,
    PacketEnqueue,
    PacketMark,
    PacketTx,
    RateFeedback,
    ServiceDecision,
    ServiceIngress,
    ServiceSnapshot,
    VoidEmit,
    event_record,
)
from repro.obs.sink import JsonlSink, NullSink, RingBufferSink, TraceSink
from repro.obs.timeseries import Bucket, TimeSeries
from repro.obs.traces import (
    LatencyRecord,
    QueueBucket,
    TraceArtifacts,
    find_trace_artifacts,
    port_kind_of,
    read_latency_csv,
    read_queues_csv,
)

__all__ = [
    "AdmissionDecision", "Bucket", "EVENT_KINDS", "FlowFinish",
    "FlowStart", "JsonlSink", "LatencyRecord", "NullSink", "PacerStamp",
    "PacketDrop", "PacketEnqueue", "PacketMark", "PacketTx",
    "QueueBucket", "RateFeedback", "RingBufferSink",
    "ServiceDecision", "ServiceIngress",
    "ServiceSnapshot", "TimeSeries", "TraceArtifacts", "TraceSink",
    "VoidEmit", "event_record", "find_trace_artifacts", "port_kind_of",
    "read_latency_csv", "read_queues_csv",
]
