"""Command-line entry points: ``python -m repro <command>``.

A thin operational layer over the library for users who want to poke at
the system without writing code:

* ``admit``      -- run admission control for one tenant spec and print
                    the placement and latency bound;
* ``bounds``     -- print the message-latency bound table for a guarantee;
* ``pace``       -- show the void-packet wire schedule for a rate limit;
* ``churn``      -- run the flow-level cluster simulation and print
                    admission/utilization for the three policies;
* ``trace``      -- run a packet-level experiment (class-A epoch bursts
                    sharing the fabric with class-B bulk tenants) with
                    full event tracing, and dump figure-ready JSONL/CSV;
* ``whatif``     -- score a proposed class-A placement with the
                    calibrated per-hop surrogate: estimated
                    p50/p95/p99/p999 message latency in milliseconds of
                    compute instead of minutes of packet simulation;
* ``faults``     -- fill the cluster to an occupancy, replay a seeded
                    fault schedule through the recovery controller, and
                    dump the fault timeline and per-tenant SLO-violation
                    report as CSVs;
* ``campaign``   -- run a registered or file-defined sweep across worker
                    processes with checkpoint/resume (see
                    ``docs/CAMPAIGNS.md``);
* ``serve``      -- run the long-running admission-control service
                    against a seeded closed-loop load generator, with
                    write-ahead logging, crash/restart identity checks
                    and optional fault injection (see
                    ``docs/SERVICE.md``);
* ``report``     -- regenerate EXPERIMENTS.md's measured tables from
                    committed campaign outputs (``--check`` for CI).

Error contract: a malformed ``--faults`` spec or campaign ``--spec``
file exits with code 2 and a one-line ``error:`` diagnostic naming the
bad field on stderr -- never a traceback.  A campaign cell that outruns
``--cell-timeout`` fails that cell (and the campaign exits 1 listing
it) instead of hanging the run.

``pace`` and ``churn`` accept ``--trace-out`` to capture their event
streams through the same :mod:`repro.obs` sinks.  ``churn`` and
``trace`` accept ``--faults <spec>`` to inject failures mid-run (see
:meth:`repro.faults.FaultSchedule.from_spec` for the spec grammar); all
randomness-drawing commands take ``--seed`` and same-seed runs produce
byte-identical CSV output.

``churn``, ``trace`` and ``faults`` run through the campaign runner
when given ``--out <dir>``: each (policy x) seed cell checkpoints under
``<dir>/cells/``, artifacts land under ``<dir>/artifacts/<cell>/``,
``<dir>/manifest.json`` maps cells to artifacts, and ``--workers N`` /
``--resume`` parallelize and recover interrupted runs without changing
a byte of the merged output.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.silo import SiloController
from repro.core.tenant import TenantClass, TenantRequest
from repro.topology import TreeTopology


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--racks-per-pod", type=int, default=4)
    parser.add_argument("--servers-per-rack", type=int, default=10)
    parser.add_argument("--slots", type=int, default=8)
    parser.add_argument("--link-gbps", type=float, default=10.0)
    parser.add_argument("--oversubscription", type=float, default=5.0)
    parser.add_argument("--buffer-kb", type=float, default=312.0)


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    """Flags switching a subcommand onto the campaign runner."""
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="run as a campaign: checkpoints under "
                             "DIR/cells/, per-cell artifacts under "
                             "DIR/artifacts/, plus DIR/manifest.json")
    parser.add_argument("--seeds", type=int, nargs="+", metavar="SEED",
                        default=None,
                        help="sweep several seeds (campaign mode; "
                             "overrides --seed)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for --out runs "
                             "(0 = serial in-process)")
    parser.add_argument("--resume", action="store_true",
                        help="with --out: skip cells already "
                             "checkpointed")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="fail any cell that outruns this "
                             "wall-clock budget instead of hanging "
                             "the campaign")


def _topology(args: argparse.Namespace) -> TreeTopology:
    return TreeTopology(
        n_pods=args.pods, racks_per_pod=args.racks_per_pod,
        servers_per_rack=args.servers_per_rack,
        slots_per_server=args.slots,
        link_rate=units.gbps(args.link_gbps),
        oversubscription=args.oversubscription,
        buffer_bytes=args.buffer_kb * units.KB)


def _guarantee(args: argparse.Namespace) -> NetworkGuarantee:
    return NetworkGuarantee(
        bandwidth=units.mbps(args.bandwidth_mbps),
        burst=args.burst_kb * units.KB,
        delay=(args.delay_us * units.MICROS
               if args.delay_us is not None else None),
        peak_rate=(units.gbps(args.bmax_gbps)
                   if args.bmax_gbps is not None else None))


def _write_csv(path: str, columns, rows) -> None:
    """Dump rows of cells as CSV; ``None`` cells render empty.

    Cells are written with ``str()`` (``repr`` round-trip for floats), so
    same-seed runs produce byte-identical files.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(columns) + "\n")
        for row in rows:
            handle.write(",".join("" if cell is None else str(cell)
                                  for cell in row) + "\n")


def _fmt_ratio(value: Optional[float]) -> str:
    """Render a fraction for humans; NaN/None (no data) is "n/a", not 0%."""
    if value is None or math.isnan(value):
        return "n/a"
    return f"{value:.2%}"


def _fmt_usec(value: Optional[float]) -> str:
    """Render a microseconds value; NaN/None (no data) is "n/a"."""
    if value is None or math.isnan(value):
        return "n/a"
    return f"{value:.1f}us"


def _topology_params(args: argparse.Namespace) -> dict:
    """The topology flags as scenario keyword arguments."""
    return {"pods": args.pods, "racks_per_pod": args.racks_per_pod,
            "servers_per_rack": args.servers_per_rack,
            "slots": args.slots, "link_gbps": args.link_gbps,
            "oversubscription": args.oversubscription,
            "buffer_kb": args.buffer_kb}


def _seeds(args: argparse.Namespace) -> tuple:
    """The seed axis: ``--seeds`` when given, else the single ``--seed``."""
    if getattr(args, "seeds", None):
        return tuple(args.seeds)
    return (args.seed,)


def _progress(message: str) -> None:
    """Campaign progress lines go to stderr, keeping stdout scriptable."""
    print(message, file=sys.stderr)


def _run_cli_campaign(spec, args):
    """Run a CLI subcommand's spec through the campaign runner."""
    from repro.campaign import run_campaign
    return run_campaign(spec, out=args.out, workers=args.workers,
                        resume=args.resume, progress=_progress,
                        cell_timeout=getattr(args, "cell_timeout", None))


def _spec_error(flag: str, spec, exc: Exception) -> int:
    """One-line exit-2 diagnostic for a malformed spec (no traceback)."""
    reason = (f"missing key {exc}" if isinstance(exc, KeyError)
              else str(exc))
    print(f"error: bad {flag} {spec!r}: {reason}", file=sys.stderr)
    return 2


def _check_faults_spec(args) -> Optional[int]:
    """Eagerly validate ``--faults`` so a malformed spec is a clean
    exit 2 here, not a traceback from inside a scenario or worker.
    Returns the exit code on error, None when the spec is fine.

    Validation runs the real parser at horizon 0: every field of the
    spec (inline keys, JSON event entries, target names) is checked
    without generating the event stream twice.
    """
    if not getattr(args, "faults", None):
        return None
    from repro.faults import FaultSchedule
    try:
        FaultSchedule.from_spec(args.faults, _topology(args),
                                horizon=0.0, seed=args.seed)
    except (KeyError, OSError, ValueError) as exc:
        return _spec_error("--faults", args.faults, exc)
    return None


def _report_failures(result) -> int:
    """stderr lines + nonzero exit for a campaign with failed cells."""
    for record in result.failed:
        print(f"cell FAILED: {record.cell.describe()}: {record.error}",
              file=sys.stderr)
    print(f"error: {len(result.failed)} cell(s) failed; no merged "
          f"outputs written (rerun with --resume to retry them)",
          file=sys.stderr)
    return 1


def cmd_admit(args: argparse.Namespace) -> int:
    """Admission-control one tenant spec and print its placement."""
    silo = SiloController(_topology(args))
    request = TenantRequest(
        n_vms=args.vms, guarantee=_guarantee(args),
        tenant_class=(TenantClass.CLASS_A if args.delay_us is not None
                      else TenantClass.CLASS_B))
    admitted = silo.admit(request)
    if admitted is None:
        print("REJECTED: the guarantees cannot be met on this topology")
        return 1
    counts = admitted.placement.vms_per_server()
    print(f"ADMITTED {request.n_vms} VMs across "
          f"{len(counts)} servers: "
          + ", ".join(f"server {s}: {c} VM(s)"
                      for s, c in sorted(counts.items())))
    if request.wants_delay:
        for size_kb in (1, 15, 100, 1000):
            bound = silo.message_latency_bound(request.tenant_id,
                                               size_kb * units.KB)
            print(f"  {size_kb:5d} KB message latency bound: "
                  f"{units.to_msec(bound):8.3f} ms")
    print(f"  worst switch queue bound now: "
          f"{units.to_usec(silo.worst_queue_bound()):.1f} us")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    """Print the message-latency bound table for a guarantee."""
    guarantee = _guarantee(args)
    if not guarantee.wants_delay:
        print("bounds need a --delay-us guarantee", file=sys.stderr)
        return 2
    print(f"{'message':>10}  {'bound':>12}")
    for size_kb in (0.1, 1, 4, 15, 50, 100, 500, 1000, 10000):
        bound = guarantee.message_latency_bound(size_kb * units.KB)
        print(f"{size_kb:8.1f}KB  {units.to_msec(bound):10.3f}ms")
    return 0


def cmd_pace(args: argparse.Namespace) -> int:
    """Show the void-packet wire schedule for one rate limit."""
    from repro.pacer import PacerConfig, VMPacer, VoidScheduler
    link = units.gbps(args.link_gbps)
    rate = units.gbps(args.rate_gbps)
    sink = None
    if args.trace_out:
        from repro.obs import JsonlSink
        sink = JsonlSink(args.trace_out)
    pacer = VMPacer(PacerConfig(bandwidth=rate, burst=units.MTU,
                                peak_rate=rate), tracer=sink)
    stamped = [(pacer.stamp("d", units.MTU, 0.0), units.MTU)
               for _ in range(args.packets)]
    schedule = VoidScheduler(link, tracer=sink).schedule(stamped)
    data_rate, void_rate = schedule.rates()
    print(f"rate limit {args.rate_gbps:g} Gbps on {args.link_gbps:g} GbE: "
          f"{len(schedule.data_slots)} data + "
          f"{len(schedule.void_slots)} void frames")
    print(f"wire: data {units.to_gbps(data_rate):.2f} Gbps + "
          f"void {units.to_gbps(void_rate):.2f} Gbps")
    print(f"worst pacing error: {schedule.max_pacing_error() * 1e9:.1f} ns")
    if sink is not None:
        sink.close()
        print(f"wrote {args.trace_out}")
    return 0


_CHURN_POLICIES = ("locality", "oktopus", "silo")


def _print_churn_result(result: dict, seed: Optional[int] = None) -> None:
    """One policy's churn summary (optionally tagged with its seed)."""
    name = result["policy"]
    tag = f"{name:10s} " if seed is None else f"{name:10s} seed={seed} "
    print(f"{tag}admitted={result['admitted']:6.1%} "
          f"occupancy={result['occupancy']:5.1%} "
          f"utilization={result['utilization']:6.2%} "
          f"jobs={result['jobs']} [{result['audit']}]")
    faults = result.get("faults")
    if faults is not None:
        print(f"{'':10s} faults: affected={faults['affected']} "
              f"recovered={faults['recovered']} "
              f"degraded={faults['degraded']} "
              f"evicted={faults['evicted']} "
              f"killed_jobs={faults['killed_jobs']} "
              f"rerouted={faults['rerouted']}")


def cmd_churn(args: argparse.Namespace) -> int:
    """Flow-level churn for the three policies (optionally a campaign).

    Without ``--out`` this is the classic serial run at one seed, with
    ``--trace-out PREFIX`` writing the legacy ``<prefix>.<policy>.*``
    artifact files.  With ``--out DIR`` the (policy x seed) grid runs
    through the campaign runner (``--workers``, ``--resume``); with
    several ``--seeds`` the per-seed utilization time series are merged
    count-weighted into ``<dir>/merged.util.<policy>.csv`` and the job
    counters pooled per policy.
    """
    from repro.campaign.scenarios import churn_cell
    bad_spec = _check_faults_spec(args)
    if bad_spec is not None:
        return bad_spec
    common = dict(occupancy=args.occupancy, horizon=args.horizon,
                  faults=args.faults, **_topology_params(args))
    if not args.out:
        for name in _CHURN_POLICIES:
            result = churn_cell(policy=name, seed=args.seed,
                                artifact_prefix=args.trace_out, **common)
            _print_churn_result(result)
        if args.trace_out:
            print(f"wrote {args.trace_out}.<policy>.events.jsonl "
                  f"/ .util.csv / .admission.csv"
                  + (" / .recovery.csv" if args.faults else ""))
        return 0

    from repro.campaign import SweepSpec, merge_bucket_rows, sum_counters
    seeds = _seeds(args)
    spec = SweepSpec(name="churn", scenario="churn_policy",
                     grid={"policy": list(_CHURN_POLICIES)}, seeds=seeds,
                     fixed=common)
    result = _run_cli_campaign(spec, args)
    if result.failed:
        return _report_failures(result)
    for record in result.records:
        _print_churn_result(record.result,
                            seed=record.cell.seed if len(seeds) > 1
                            else None)
    out = Path(args.out)
    for name in _CHURN_POLICIES:
        cells = [r.result for r in result.records
                 if dict(r.cell.params)["policy"] == name]
        series_parts = [c["util_series"] for c in cells
                        if c.get("util_series")]
        if series_parts:
            merged = merge_bucket_rows(series_parts)
            _write_csv(out / f"merged.util.{name}.csv",
                       ("time", "count", "mean", "min", "max", "last"),
                       ((b["start"], b["count"], b["mean"], b["min"],
                         b["max"], b["last"]) for b in merged))
        if len(seeds) > 1:
            pooled = sum_counters([{"jobs": c["jobs"],
                                    "admitted": c["admitted"]}
                                   for c in cells])
            print(f"{name:10s} pooled over {len(seeds)} seeds: "
                  f"jobs={pooled['jobs']} "
                  f"mean_admitted={pooled['admitted'] / len(cells):6.1%}")
    print(f"wrote {out}/manifest.json "
          f"(+ merged.util.<policy>.csv, cells/, artifacts/)")
    return 0


def _fg_offset(value: str):
    """``--fg-offset`` parser: a float, or the literal ``peak``."""
    if value == "peak":
        return value
    try:
        return float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds or 'peak', got {value!r}")


def _print_hybrid_result(result: dict, seed: Optional[int] = None) -> None:
    """One hybrid cell's summary on stdout."""
    tag = f"[seed {seed}] " if seed is not None else ""
    bg = result["background"]
    print(f"{tag}{result['policy']:10s} "
          f"bg: admitted={result['bg_admitted']:6.1%} "
          f"occupancy={bg['mean_occupancy']:6.1%} "
          f"jobs={bg['finished_jobs']}")
    print(f"{'':10s} window: offset={result['fg_offset']:.3f}s "
          f"length={1e3 * result['fg_horizon']:g}ms "
          f"watched_ports={result['watched_ports']} "
          f"residual_events={result['residual_events']}")
    for tenant in result["foreground"]:
        line = (f"{'':10s} fg tenant {tenant['tenant_id']} "
                f"({tenant['app']}, {tenant['vms']} VMs): "
                f"messages={tenant['messages']} "
                f"p50={_fmt_usec(tenant['p50_us'])} "
                f"p99={_fmt_usec(tenant['p99_us'])}")
        if tenant.get("rps") is not None:
            line += f" rps={tenant['rps']:.0f}"
        if tenant.get("late") is not None:
            line += f" late={_fmt_ratio(tenant['late'])}"
        print(line)
    if result["rejected_foreground"]:
        print(f"{'':10s} rejected foreground tenants: "
              f"{result['rejected_foreground']}")


def cmd_hybrid(args: argparse.Namespace) -> int:
    """Hybrid-fidelity run: packet foreground, fluid background.

    Places one foreground tenant through the policy's admission path,
    churns a fluid background cluster around its reservation, then
    replays the background's residual port capacity into a packet-level
    window running the foreground application.  With ``--out DIR`` the
    (seed) grid runs through the campaign runner.
    """
    from repro.campaign.scenarios import hybrid_cell
    bad_spec = _check_faults_spec(args)
    if bad_spec is not None:
        return bad_spec
    params = dict(policy=args.policy, fg_app=args.app, fg_vms=args.fg_vms,
                  fg_bandwidth_mbps=args.bandwidth_mbps,
                  occupancy=args.occupancy, horizon=args.horizon,
                  fg_horizon_ms=args.fg_horizon_ms,
                  fg_offset=args.fg_offset, bg_flow_mb=args.bg_flow_mb,
                  bg_compute_s=args.bg_compute_s, faults=args.faults,
                  **_topology_params(args))
    if not args.out:
        result = hybrid_cell(seed=args.seed, **params)
        _print_hybrid_result(result)
        return 0

    from repro.campaign import SweepSpec
    seeds = _seeds(args)
    spec = SweepSpec(name="hybrid", scenario="hybrid_cell",
                     grid={}, seeds=seeds, fixed=params)
    result = _run_cli_campaign(spec, args)
    if result.failed:
        return _report_failures(result)
    for record in result.records:
        _print_hybrid_result(record.result,
                             seed=record.cell.seed if len(seeds) > 1
                             else None)
    print(f"wrote {args.out}/manifest.json (+ cells/, artifacts/)")
    return 0


def _print_trace_result(result: dict) -> None:
    """One trace cell's summary in the classic format."""
    print(f"admission: {result['admission']}")
    for tenant in result["tenants"]:
        print(f"tenant {tenant['tenant_id']}: "
              f"messages={tenant['messages']} "
              f"p99={_fmt_usec(tenant['p99_us'])} "
              f"late={_fmt_ratio(tenant['late'])}")
    ports = result["ports"]
    print(f"ports: drops={ports['drops']} pushouts={ports['pushouts']} "
          f"max_queue={ports['max_queue_bytes'] / units.KB:.1f}KB")
    counters = result.get("mechanism_counters")
    if counters:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"mechanism[{result.get('mechanism', '?')}]: {rendered}")
    faults = result.get("faults")
    if faults is not None:
        print(f"faults: applied={faults['applied']} "
              f"fault_drops={faults['fault_drops']}")


def cmd_trace(args: argparse.Namespace) -> int:
    """Packet-level Fig. 9-style run with full event tracing.

    Class-A tenants run synchronized all-to-one epoch bursts, class-B
    tenants run bulk transfers, all behind Silo admission control and
    hypervisor pacers.  With ``--out DIR`` the run goes through the
    campaign runner: each seed's complete event stream (JSONL) plus
    per-message latency, per-port queue depth and per-request admission
    CSVs land under ``<dir>/artifacts/<cell>/`` with a
    ``manifest.json`` mapping cells to files -- enough to plot
    per-tenant latency distributions and queue-depth time series
    offline.
    """
    from repro.campaign.scenarios import trace_cell
    bad_spec = _check_faults_spec(args)
    if bad_spec is not None:
        return bad_spec
    params = dict(vms=args.vms, bandwidth_mbps=args.bandwidth_mbps,
                  burst_kb=args.burst_kb, delay_us=args.delay_us,
                  bmax_gbps=args.bmax_gbps, class_a=args.class_a,
                  class_b=args.class_b, message_kb=args.message_kb,
                  epoch_us=args.epoch_us, duration_ms=args.duration_ms,
                  queue_interval_us=args.queue_interval_us,
                  faults=args.faults, mechanism=args.mechanism,
                  **_topology_params(args))
    if not args.out:
        result = trace_cell(seed=args.seed, **params)
        _print_trace_result(result)
        print(f"traced {result['traced_events']} events "
              f"(ring buffer; use --out to keep them)")
        return 0

    from repro.campaign import SweepSpec
    seeds = _seeds(args)
    spec = SweepSpec(name="trace", scenario="trace_run", grid={},
                     seeds=seeds, fixed=params)
    result = _run_cli_campaign(spec, args)
    if result.failed:
        return _report_failures(result)
    for record in result.records:
        if len(seeds) > 1:
            print(f"--- seed {record.cell.seed} ---")
        _print_trace_result(record.result)
    print(f"wrote {args.out}/manifest.json (events.jsonl / latency.csv "
          f"/ queues.csv / admission.csv per cell under artifacts/)")
    return 0


def _calibrate_whatif(args: argparse.Namespace):
    """Fit a what-if surrogate from a traced campaign directory.

    When ``--calibrate`` points at a ``repro trace --out`` campaign,
    the calibration scenario's parameters (topology, guarantee,
    workload) are taken from its ``manifest.json`` so the fit replays
    exactly the admission decisions that produced the trace; a plain
    artifact directory falls back to the command-line flags.
    """
    from repro.analysis.surrogate import fit_whatif_model
    from repro.obs.traces import find_trace_artifacts
    artifacts = find_trace_artifacts(args.calibrate)
    params = None
    manifest = Path(args.calibrate) / "manifest.json"
    if manifest.is_file():
        cells = json.loads(
            manifest.read_text(encoding="utf-8")).get("cells") or []
        if cells:
            params = cells[0].get("params")
    if params is None:
        params = dict(vms=args.vms, bandwidth_mbps=args.bandwidth_mbps,
                      burst_kb=args.burst_kb, delay_us=args.delay_us,
                      bmax_gbps=args.bmax_gbps, class_a=args.class_a,
                      message_kb=args.message_kb,
                      **_topology_params(args))
    topology = TreeTopology(
        n_pods=int(params["pods"]),
        racks_per_pod=int(params["racks_per_pod"]),
        servers_per_rack=int(params["servers_per_rack"]),
        slots_per_server=int(params["slots"]),
        link_rate=units.gbps(params["link_gbps"]),
        oversubscription=params["oversubscription"],
        buffer_bytes=params["buffer_kb"] * units.KB)
    guarantee = NetworkGuarantee(
        bandwidth=units.mbps(params["bandwidth_mbps"]),
        burst=params["burst_kb"] * units.KB,
        delay=(params["delay_us"] * units.MICROS
               if params["delay_us"] is not None else None),
        peak_rate=(units.gbps(params["bmax_gbps"])
                   if params["bmax_gbps"] is not None else None))
    message_bytes = params["message_kb"] * units.KB
    silo = SiloController(topology)
    placements = []
    for _ in range(int(params["class_a"])):
        request = TenantRequest(n_vms=int(params["vms"]),
                                guarantee=guarantee,
                                tenant_class=TenantClass.CLASS_A)
        admitted = silo.admit(request)
        if admitted is not None:
            placements.append(admitted.placement)
    meta = {"source": str(args.calibrate), "traces": len(artifacts),
            "class_a": int(params["class_a"]),
            "vms": int(params["vms"]),
            "message_kb": params["message_kb"]}
    return fit_whatif_model(topology, placements, guarantee,
                            message_bytes, artifacts, meta=meta)


def cmd_whatif(args: argparse.Namespace) -> int:
    """Score a proposed class-A placement with the calibrated surrogate.

    Loads a committed surrogate model (``--model``) or fits one from a
    traced campaign (``--calibrate``, optionally persisted with
    ``--save-model``), then runs real admission control for the what-if
    tenants and prints each admitted placement's estimated
    p50/p95/p99/p999 message latency together with its worst-case
    network-calculus bound.  The estimate itself takes microseconds --
    the point is to explore placements and burst allowances without
    re-running the packet simulator.
    """
    from repro.analysis.surrogate import (REPORT_QUANTILES, WhatIfModel,
                                          quantile_label)
    if bool(args.model) == bool(args.calibrate):
        print("whatif needs exactly one of --model or --calibrate",
              file=sys.stderr)
        return 2
    if args.model:
        try:
            model = WhatIfModel.load(args.model)
        except (KeyError, OSError, TypeError, ValueError) as exc:
            return _spec_error("--model", args.model, exc)
        print(f"loaded surrogate model from {args.model}")
    else:
        try:
            model = _calibrate_whatif(args)
        except (KeyError, OSError, ValueError) as exc:
            return _spec_error("--calibrate", args.calibrate, exc)
        print(f"calibrated on {model.meta.get('traces', '?')} trace(s), "
              f"{model.meta.get('calibration_messages', 0)} messages: "
              f"offset={units.to_usec(model.offset):+.1f}us "
              f"scale={model.scale:.3f}")
    if args.save_model:
        model.save(args.save_model)
        print(f"wrote {args.save_model}")

    topology = _topology(args)
    guarantee = _guarantee(args)
    silo = SiloController(topology)
    message_bytes = args.message_kb * units.KB
    scored = []
    start = time.perf_counter()
    for _ in range(args.class_a):
        request = TenantRequest(n_vms=args.vms, guarantee=guarantee,
                                tenant_class=TenantClass.CLASS_A)
        admitted = silo.admit(request)
        if admitted is None:
            print(f"tenant {request.tenant_id}: REJECTED (guarantees "
                  f"cannot be met on this topology)")
            continue
        estimate = model.estimate(topology, admitted.placement,
                                  message_bytes)
        scored.append((request, admitted, estimate))
    elapsed = time.perf_counter() - start
    for request, admitted, estimate in scored:
        servers = len(admitted.placement.vms_per_server())
        quantiles = " ".join(
            f"{quantile_label(q)}="
            f"{units.to_usec(estimate.quantiles[q]):.1f}us"
            for q in REPORT_QUANTILES)
        print(f"tenant {request.tenant_id}: {request.n_vms} VMs on "
              f"{servers} server(s), {args.message_kb:g}KB messages: "
              f"{quantiles}")
        print(f"  worst-case bound {units.to_usec(estimate.bound):.1f}us, "
              f"contention-free base "
              f"{units.to_usec(estimate.base):.1f}us")
    print(f"estimated {len(scored)} placement(s) in "
          f"{elapsed * 1e3:.2f} ms")
    return 0 if scored else 1


def _print_faults_result(result: dict, duration_ms: float) -> None:
    """One faults cell's summary in the classic format."""
    print(f"filled: {result['filled_tenants']} tenants on "
          f"{result['filled_slots']}/{result['total_slots']} "
          f"slots [{result['fill_audit']}]")
    print(f"replayed {result['n_events']} fault events over "
          f"{duration_ms:g} ms")
    print(f"tenants affected: {result['affected']} "
          f"(recovered={result['recovered']} "
          f"degraded={result['degraded']} "
          f"evicted={result['evicted']})")
    mttr = result["mean_ttr_s"]
    print(f"guarantee-seconds lost: "
          f"{result['guarantee_seconds_lost']:.6f}  "
          f"mean time-to-recover: "
          + (f"{units.to_msec(mttr):.3f} ms" if mttr is not None
             else "n/a"))


def cmd_faults(args: argparse.Namespace) -> int:
    """Control-plane fault campaign: fill, break, self-heal, report.

    Fills the cluster to ``--occupancy`` with the standard tenant mix,
    replays a seeded fault schedule through the
    :class:`~repro.placement.ClusterController`, and reports each
    tenant's fate (recovered / degraded / evicted) plus the
    SLO-violation totals (guarantee-seconds lost, time-to-recover).
    With ``--out DIR`` the run goes through the campaign runner: each
    seed's fault timeline, per-tenant report and placement event stream
    land under ``<dir>/artifacts/<cell>/`` as ``faults.csv`` /
    ``recovery.csv`` / ``events.jsonl``; same-seed runs are
    byte-identical.
    """
    from repro.campaign.scenarios import faults_cell
    bad_spec = _check_faults_spec(args)
    if bad_spec is not None:
        return bad_spec
    params = dict(policy=args.policy, occupancy=args.occupancy,
                  faults=args.faults, duration_ms=args.duration_ms,
                  **_topology_params(args))
    if not args.out:
        result = faults_cell(seed=args.seed, **params)
        _print_faults_result(result, args.duration_ms)
        return 0

    from repro.campaign import SweepSpec
    seeds = _seeds(args)
    spec = SweepSpec(name="faults", scenario="faults_campaign", grid={},
                     seeds=seeds, fixed=params)
    result = _run_cli_campaign(spec, args)
    if result.failed:
        return _report_failures(result)
    for record in result.records:
        if len(seeds) > 1:
            print(f"--- seed {record.cell.seed} ---")
        _print_faults_result(record.result, args.duration_ms)
    print(f"wrote {args.out}/manifest.json (faults.csv / recovery.csv "
          f"/ events.jsonl per cell under artifacts/)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a registered or file-defined sweep through the campaign runner.

    ``--list`` prints the registered sweep names.  Otherwise the spec
    comes from ``--name`` (registry) or ``--spec`` (JSON file), fans out
    over ``--workers`` processes, checkpoints each cell under
    ``<out>/cells/``, and writes ``manifest.json`` + ``merged.json``.
    ``--resume`` re-runs only the missing cells of an interrupted run;
    the merged output is byte-identical for any worker count.
    """
    from repro.campaign import SweepSpec, get_sweep, list_sweeps, \
        run_campaign
    if args.list:
        for name in list_sweeps():
            spec = get_sweep(name)
            print(f"{name:20s} {len(spec):4d} cells "
                  f"(scenario {spec.scenario})")
        return 0
    if bool(args.name) == bool(args.spec):
        print("campaign needs exactly one of --name or --spec "
              "(or --list)", file=sys.stderr)
        return 2
    if not args.out:
        print("campaign needs --out DIR for its checkpoints and "
              "manifest", file=sys.stderr)
        return 2
    try:
        spec = (get_sweep(args.name) if args.name
                else SweepSpec.from_file(args.spec))
    except (KeyError, OSError, ValueError) as exc:
        return _spec_error("--name" if args.name else "--spec",
                           args.name or args.spec, exc)
    result = run_campaign(spec, out=args.out, workers=args.workers,
                          resume=args.resume, max_cells=args.max_cells,
                          progress=_progress,
                          cell_timeout=args.cell_timeout)
    if result.failed:
        return _report_failures(result)
    done = len(result.records)
    if args.max_cells is not None and done < len(spec):
        print(f"stopped after {done}/{len(spec)} cells (--max-cells); "
              f"rerun with --resume to finish")
    else:
        print(f"{spec.name}: {done} cells -> {args.out}/manifest.json")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the admission-control service under closed-loop load.

    Starts (or, when ``--data-dir`` already holds a write-ahead log and
    snapshot, *recovers*) the long-running admission service and drives
    it with the seeded closed-loop load generator: tenant arrivals,
    departures when jobs complete, optional ``--faults`` injection, and
    budget-aware retry against the service's backpressure hints.  The
    summary (counters, latency percentiles, final state digest) prints
    as JSON on stdout.

    Chaos handles: ``--kill-after N`` records the state digest after
    tick N and ``SIGKILL``s the process -- mid-run, no shutdown path;
    rerunning with the same ``--data-dir`` and ``--check-digest`` then
    proves recovery rebuilt bit-identical books before resuming the
    same seeded event stream.  ``docs/SERVICE.md`` walks through the
    full session.
    """
    from repro.faults import FaultSchedule
    from repro.service import AdmissionService, ClosedLoopLoadGen
    bad_spec = _check_faults_spec(args)
    if bad_spec is not None:
        return bad_spec
    topology = _topology(args)
    fault_events: list = []
    if args.faults:
        schedule = FaultSchedule.from_spec(args.faults, topology,
                                           horizon=args.horizon,
                                           seed=args.seed)
        fault_events = list(schedule.events)
    sink = None
    if args.trace_out:
        from repro.obs import JsonlSink
        sink = JsonlSink(args.trace_out)
    data_dir = Path(args.data_dir)
    service = AdmissionService(
        topology, data_dir, queue_capacity=args.queue_capacity,
        batch_size=args.batch_size, admission_timeout=args.timeout,
        snapshot_every=args.snapshot_every, tracer=sink)
    digest_path = data_dir / "digest.txt"
    if args.check_digest:
        if not digest_path.is_file():
            print(f"error: no pre-kill digest at {digest_path} "
                  f"(run with --kill-after first)", file=sys.stderr)
            return 2
        expected = digest_path.read_text(encoding="utf-8").strip()
        actual = service.state_digest()
        if actual != expected:
            print(f"error: recovered digest {actual} != pre-kill "
                  f"digest {expected}", file=sys.stderr)
            return 1
        print(f"recovery OK: digest {actual} matches pre-kill state "
              f"({service.metrics.replayed} WAL records replayed)",
              file=sys.stderr)
    loadgen = ClosedLoopLoadGen(
        service, arrival_rate=args.arrival_rate, horizon=args.horizon,
        seed=args.seed, fault_events=fault_events,
        tick_interval=args.tick_interval,
        retry_budget=args.retry_budget)
    on_tick = None
    if args.kill_after is not None:
        def on_tick(tick_index: int, now: float) -> bool:
            if tick_index >= args.kill_after:
                digest_path.write_text(service.state_digest() + "\n",
                                       encoding="utf-8")
                os.kill(os.getpid(), signal.SIGKILL)
            return True
    summary = loadgen.run(on_tick=on_tick)
    service.close()
    if sink is not None:
        sink.close()
    print(json.dumps(summary, sort_keys=True, indent=1))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate EXPERIMENTS.md's measured tables from campaign data.

    Re-renders every marker block (``<!-- begin:ID -->`` ..
    ``<!-- end:ID -->``) whose campaign has a committed
    ``merged.json`` and splices it into the document.  ``--check``
    verifies without writing and exits 1 on drift (the CI gate).
    """
    from repro.campaign.report import update_document
    doc = Path(args.doc)
    campaigns = Path(args.campaigns)
    changed = update_document(doc, campaigns, check=args.check)
    if args.check:
        if changed:
            print(f"{doc} is stale; run 'python -m repro report' and "
                  f"commit", file=sys.stderr)
            return 1
        print(f"{doc} is up to date with {campaigns}/")
        return 0
    print(f"{doc}: {'updated' if changed else 'already up to date'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silo (SIGCOMM 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("admit", help="admission-control one tenant")
    _add_topology_args(p)
    p.add_argument("--vms", type=int, default=8)
    p.add_argument("--bandwidth-mbps", type=float, default=250.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_admit)

    p = sub.add_parser("bounds", help="message latency bound table")
    p.add_argument("--bandwidth-mbps", type=float, default=250.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("pace", help="void-packet wire schedule")
    p.add_argument("--rate-gbps", type=float, default=2.0)
    p.add_argument("--link-gbps", type=float, default=10.0)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write pacer stamp/void events as JSONL")
    p.set_defaults(func=cmd_pace)

    p = sub.add_parser("churn", help="flow-level cluster simulation")
    _add_topology_args(p)
    p.add_argument("--occupancy", type=float, default=0.75)
    p.add_argument("--horizon", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-out", metavar="PREFIX", default=None,
                   help="write per-policy event JSONL, a link-utilization "
                        "CSV and an admission-audit CSV")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject failures mid-run: 'poisson:mtbf_ms=..,"
                        "mttr_ms=..[,targets=link+server][,degrade=..]' "
                        "or a JSON scenario file ('none' disables)")
    _add_campaign_args(p)
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser("hybrid",
                       help="packet foreground inside a fluid background")
    _add_topology_args(p)
    p.add_argument("--policy", choices=["silo", "oktopus", "locality"],
                   default="silo",
                   help="admission/placement policy shared by foreground "
                        "and background")
    p.add_argument("--app", choices=["memcached", "burst"],
                   default="memcached",
                   help="foreground packet application")
    p.add_argument("--fg-vms", type=int, default=6)
    p.add_argument("--bandwidth-mbps", type=float, default=100.0,
                   help="foreground hose guarantee")
    p.add_argument("--occupancy", type=float, default=0.7,
                   help="target background slot occupancy")
    p.add_argument("--horizon", type=float, default=8.0,
                   help="fluid background run length (seconds)")
    p.add_argument("--fg-horizon-ms", type=float, default=20.0,
                   help="packet window length (milliseconds)")
    p.add_argument("--fg-offset", type=_fg_offset, default=None,
                   metavar="SECONDS|peak",
                   help="background time the packet window starts at "
                        "(default: mid-run; 'peak' aligns with the "
                        "recorded background-usage peak)")
    p.add_argument("--bg-flow-mb", type=float, default=250.0,
                   help="background class-B flow size (MB; class-A "
                        "scales with it)")
    p.add_argument("--bg-compute-s", type=float, default=4.0,
                   help="background mean compute time (seconds)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject failures into the background cluster "
                        "(same SPEC syntax as churn)")
    _add_campaign_args(p)
    p.set_defaults(func=cmd_hybrid)

    p = sub.add_parser("trace",
                       help="packet-level run with full event tracing")
    _add_topology_args(p)
    # 12 VMs on 8-slot servers forces a rack-scope placement, so the
    # traced traffic actually crosses switch ports (an 8-VM tenant fits
    # on one server and would only exercise its vswitch).
    p.add_argument("--vms", type=int, default=12)
    p.add_argument("--bandwidth-mbps", type=float, default=1000.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.add_argument("--class-a", type=int, default=2,
                   help="epoch-burst (OLDI) tenants")
    p.add_argument("--class-b", type=int, default=1,
                   help="bulk-transfer tenants")
    p.add_argument("--message-kb", type=float, default=15.0)
    p.add_argument("--epoch-us", type=float, default=2000.0)
    p.add_argument("--duration-ms", type=float, default=20.0)
    p.add_argument("--queue-interval-us", type=float, default=50.0,
                   help="queue-depth time-series bucket width")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject port failures mid-run (same spec grammar "
                        "as 'churn --faults')")
    from repro.mechanisms import mechanism_names
    p.add_argument("--mechanism", choices=mechanism_names(),
                   default="silo",
                   help="SLO mechanism running the data path "
                        "(placement still goes through Silo admission)")
    _add_campaign_args(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("whatif",
                       help="estimate a placement's tail latency "
                            "without packet simulation")
    _add_topology_args(p)
    p.add_argument("--model", metavar="JSON", default=None,
                   help="committed surrogate model (written by "
                        "--save-model)")
    p.add_argument("--calibrate", metavar="DIR", default=None,
                   help="fit the surrogate from a traced campaign "
                        "directory ('repro trace --out DIR') before "
                        "estimating")
    p.add_argument("--save-model", metavar="JSON", default=None,
                   help="persist the fitted model (with --calibrate)")
    p.add_argument("--vms", type=int, default=12)
    p.add_argument("--bandwidth-mbps", type=float, default=1000.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.add_argument("--class-a", type=int, default=1,
                   help="class-A tenants to place and score")
    p.add_argument("--message-kb", type=float, default=15.0)
    p.set_defaults(func=cmd_whatif)

    p = sub.add_parser("faults",
                       help="control-plane fault campaign with recovery "
                            "report")
    _add_topology_args(p)
    p.add_argument("--policy", choices=("silo", "oktopus", "locality"),
                   default="silo")
    p.add_argument("--occupancy", type=float, default=0.75)
    p.add_argument("--faults", metavar="SPEC",
                   default="poisson:mtbf_ms=5,mttr_ms=2",
                   help="fault schedule spec (default: "
                        "'poisson:mtbf_ms=5,mttr_ms=2')")
    p.add_argument("--duration-ms", type=float, default=50.0)
    p.add_argument("--seed", type=int, default=0)
    _add_campaign_args(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("campaign",
                       help="run a sweep across worker processes with "
                            "checkpoint/resume")
    p.add_argument("--list", action="store_true",
                   help="print the registered sweep names and exit")
    p.add_argument("--name", metavar="SWEEP", default=None,
                   help="a registered sweep (see --list)")
    p.add_argument("--spec", metavar="JSON", default=None,
                   help="a SweepSpec JSON file (see docs/CAMPAIGNS.md)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="campaign directory (checkpoints, artifacts, "
                        "manifest.json, merged.json)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = serial in-process)")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already checkpointed under --out")
    p.add_argument("--max-cells", type=int, default=None,
                   help="stop after N newly executed cells (simulates "
                        "a crash; finish later with --resume)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="fail any cell that outruns this wall-clock "
                        "budget instead of hanging the campaign")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("serve",
                       help="long-running admission service with "
                            "crash-consistent recovery")
    _add_topology_args(p)
    p.add_argument("--data-dir", metavar="DIR", required=True,
                   help="durable state directory (write-ahead log + "
                        "snapshots); rerun with the same DIR to "
                        "recover a killed service")
    p.add_argument("--arrival-rate", type=float, default=20.0,
                   help="tenant arrivals per virtual second")
    p.add_argument("--horizon", type=float, default=5.0,
                   help="stop generating arrivals after this virtual "
                        "time, then drain")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="ingress queue bound (admissions bounce with "
                        "a retry-after hint beyond it)")
    p.add_argument("--batch-size", type=int, default=16,
                   help="admissions processed per service tick")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="admission deadline budget (virtual seconds)")
    p.add_argument("--tick-interval", type=float, default=0.05,
                   help="virtual seconds between service ticks")
    p.add_argument("--retry-budget", type=int, default=2,
                   help="client retries per bounced/shed admission")
    p.add_argument("--snapshot-every", type=int, default=200,
                   help="snapshot the books after this many completed "
                        "items (0 = WAL only)")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject failures mid-run (same spec grammar "
                        "as 'churn --faults')")
    p.add_argument("--kill-after", type=int, metavar="TICK",
                   default=None,
                   help="record the state digest after this tick and "
                        "SIGKILL the process (chaos test; verify with "
                        "--check-digest on restart)")
    p.add_argument("--check-digest", action="store_true",
                   help="assert the recovered state digest matches "
                        "the one --kill-after recorded, then resume")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write service ingress/decision/snapshot "
                        "events as JSONL")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("report",
                       help="regenerate EXPERIMENTS.md tables from "
                            "campaign outputs")
    p.add_argument("--campaigns", metavar="DIR", default="campaigns",
                   help="committed campaign outputs "
                        "(default: campaigns/)")
    p.add_argument("--doc", metavar="PATH", default="EXPERIMENTS.md",
                   help="document to splice tables into")
    p.add_argument("--check", action="store_true",
                   help="exit 1 if the document would change "
                        "(CI drift gate)")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: parse arguments and dispatch."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
