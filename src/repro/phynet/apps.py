"""Applications driving the packet simulator.

Three application models cover the paper's experiments:

* :class:`EpochBurstApp` -- the class-A OLDI pattern: every epoch all of a
  tenant's worker VMs simultaneously send a message to the aggregator
  (all-to-one), and the message latency distribution is the result;
* :class:`BulkApp` -- the class-B / netperf pattern: every VM pair keeps
  large transfers in flight, measuring achieved throughput;
* :class:`MemcachedApp` -- request/response RPCs with ETC-like value sizes
  and bursty request arrivals (the testbed workload of section 6.1).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro import units
from repro.phynet.metrics import MessageRecord, MetricsCollector
from repro.phynet.network import PacketNetwork
from repro.phynet.transport.base import Transport
from repro.workloads.distributions import Distribution, Fixed
from repro.workloads.memcached import EtcWorkload


class EpochBurstApp:
    """All-to-one synchronized message bursts (class-A tenants, Fig. 12).

    Every ``epoch`` seconds, each worker VM sends one ``message_size``
    message to the receiver VM; all workers fire within ``jitter`` of each
    other, which is the worst case Silo's placement must absorb.
    """

    def __init__(self, network: PacketNetwork, metrics: MetricsCollector,
                 tenant_id: int, vm_ids: Sequence[int],
                 message_size: Distribution, epoch: float,
                 rng: random.Random,
                 jitter: float = 10 * units.MICROS,
                 receiver_index: int = 0,
                 transport_class: Optional[Type[Transport]] = None,
                 transport_kwargs: Optional[dict] = None):
        if len(vm_ids) < 2:
            raise ValueError("an all-to-one tenant needs at least two VMs")
        self.network = network
        self.metrics = metrics
        self.tenant_id = tenant_id
        self.receiver = vm_ids[receiver_index]
        self.senders = [v for v in vm_ids if v != self.receiver]
        self.message_size = message_size
        self.epoch = epoch
        self.jitter = jitter
        self.rng = rng
        kwargs = transport_kwargs or {}
        self.flows = [network.transport(s, self.receiver, transport_class,
                                        **kwargs)
                      for s in self.senders]
        self.messages_sent = 0
        self._stopped = False

    def start(self, at: float = 0.0, phase: Optional[float] = None) -> None:
        """Begin the epoch loop; ``phase`` randomizes tenant alignment."""
        if phase is None:
            phase = self.rng.uniform(0.0, self.epoch)
        self.network.sim.schedule_at(at + phase, self._fire_epoch)

    def stop(self) -> None:
        """Stop scheduling further epochs."""
        self._stopped = True

    def _fire_epoch(self) -> None:
        if self._stopped:
            return
        sim = self.network.sim
        for sender, flow in zip(self.senders, self.flows):
            delay = self.rng.uniform(0.0, self.jitter)
            size = max(1.0, self.message_size.sample(self.rng))
            sim.schedule(delay, self._send_one, flow, sender, size)
        sim.schedule(self.epoch, self._fire_epoch)

    def _send_one(self, flow: Transport, sender: int, size: float) -> None:
        record = self.metrics.new_message(self.tenant_id, sender,
                                          self.receiver, size,
                                          self.network.sim.now)
        self.messages_sent += 1
        flow.send_message(record)


class BulkApp:
    """Keeps large transfers flowing on a set of VM pairs (class-B).

    Each pair always has one ``chunk_size`` message outstanding; when a
    chunk completes the next is submitted, so the pair consumes whatever
    bandwidth the network (or its guarantee) allows -- the netperf model.
    """

    def __init__(self, network: PacketNetwork, metrics: MetricsCollector,
                 tenant_id: int, pairs: Sequence[Tuple[int, int]],
                 chunk_size: float = 256 * units.KB,
                 transport_class: Optional[Type[Transport]] = None,
                 transport_kwargs: Optional[dict] = None):
        if not pairs:
            raise ValueError("a bulk app needs at least one VM pair")
        self.network = network
        self.metrics = metrics
        self.tenant_id = tenant_id
        self.chunk_size = chunk_size
        kwargs = transport_kwargs or {}
        self.flows: Dict[Tuple[int, int], Transport] = {
            (s, d): network.transport(s, d, transport_class, **kwargs)
            for (s, d) in pairs
        }
        self._stopped = False
        self._started_at: Optional[float] = None

    def start(self, at: float = 0.0) -> None:
        """Begin the bulk transfers."""
        self._started_at = at
        for pair in self.flows:
            self.network.sim.schedule_at(at, self._send_chunk, pair)

    def stop(self) -> None:
        """Stop issuing further transfers."""
        self._stopped = True

    def _send_chunk(self, pair: Tuple[int, int]) -> None:
        if self._stopped:
            return
        src, dst = pair
        record = self.metrics.new_message(self.tenant_id, src, dst,
                                          self.chunk_size,
                                          self.network.sim.now)
        record.on_complete = lambda _rec, p=pair: self._send_chunk(p)
        self.flows[pair].send_message(record)

    def delivered_bytes(self) -> float:
        """Total bytes delivered across all pairs so far."""
        return sum(f.delivered_bytes for f in self.flows.values())

    def throughput(self, elapsed: float) -> float:
        """Average delivered rate (bytes/second) since start."""
        if elapsed <= 0:
            return 0.0
        return self.delivered_bytes() / elapsed


class MemcachedApp:
    """Request/response RPCs against one server VM (section 6.1 testbed).

    Each client VM issues GET requests with ETC-like bursty gaps; the
    server replies with an ETC-like value.  The recorded message for each
    RPC spans request send to response delivery, which is what Fig. 1 and
    Fig. 11 plot.
    """

    def __init__(self, network: PacketNetwork, metrics: MetricsCollector,
                 tenant_id: int, server_vm: int,
                 client_vms: Sequence[int], workload: EtcWorkload,
                 rng: random.Random,
                 transport_class: Optional[Type[Transport]] = None,
                 transport_kwargs: Optional[dict] = None,
                 service_time: Optional[Distribution] = None):
        """``service_time`` models end-host request processing (the
        kernel/app stack the paper's guarantees exclude but its testbed
        numbers include); default is zero."""
        if not client_vms:
            raise ValueError("memcached needs at least one client VM")
        self.network = network
        self.metrics = metrics
        self.tenant_id = tenant_id
        self.server_vm = server_vm
        self.client_vms = list(client_vms)
        self.workload = workload
        self.rng = rng
        kwargs = transport_kwargs or {}
        self.request_flows = {
            c: network.transport(c, server_vm, transport_class, **kwargs)
            for c in client_vms
        }
        self.response_flows = {
            c: network.transport(server_vm, c, transport_class, **kwargs)
            for c in client_vms
        }
        self.service_time = service_time
        self.rpcs_completed = 0
        self._stopped = False

    def start(self, at: float = 0.0) -> None:
        """Begin issuing requests."""
        for client in self.client_vms:
            gap = self.workload.sample_gap(self.rng)
            self.network.sim.schedule_at(at + gap, self._issue_request,
                                         client)

    def stop(self) -> None:
        """Stop issuing further requests."""
        self._stopped = True

    def _issue_request(self, client: int) -> None:
        if self._stopped:
            return
        now = self.network.sim.now
        # The request itself is tracked privately; the metrics record is
        # created for the *response* with the request's start time, so its
        # latency is the full RPC latency.
        request = MessageRecord(tenant_id=self.tenant_id, src_vm=client,
                                dst_vm=self.server_vm,
                                size=self.workload.request_size, start=now)
        if self.service_time is None:
            request.on_complete = (
                lambda _rec, c=client, t0=now: self._serve_response(c, t0))
        else:
            request.on_complete = (
                lambda _rec, c=client, t0=now: self.network.sim.schedule(
                    max(0.0, self.service_time.sample(self.rng)),
                    self._serve_response, c, t0))
        self.request_flows[client].send_message(request)
        gap = self.workload.sample_gap(self.rng)
        self.network.sim.schedule(gap, self._issue_request, client)

    def _serve_response(self, client: int, request_start: float) -> None:
        if self._stopped:
            return
        value = self.workload.sample_value(self.rng)
        record = self.metrics.new_message(self.tenant_id, self.server_vm,
                                          client, value, request_start)
        record.on_complete = lambda _rec: self._count_rpc()
        self.response_flows[client].send_message(record)

    def _count_rpc(self) -> None:
        self.rpcs_completed += 1

    def throughput_rps(self, elapsed: float) -> float:
        """Completed RPCs per second."""
        if elapsed <= 0:
            return 0.0
        return self.rpcs_completed / elapsed
