"""Silo's hypervisor packet pacer (sections 4.3 and 5).

The pacer shapes each VM's traffic to its arrival curve with a hierarchy of
*virtual* token buckets (packets are timestamped rather than held against a
hardware timer), then realises those timestamps on the wire with **paced IO
batching**: batches are handed to the NIC back-to-back, with *void packets*
-- frames addressed so the first-hop switch drops them -- filling the gaps
between data packets.  At 10 Gbps an 84-byte void frame gives a minimum
inter-packet spacing of 67.2 ns without any NIC support.
"""

from repro.pacer.token_bucket import TokenBucket
from repro.pacer.hierarchy import VMPacer, PacerConfig
from repro.pacer.void_packets import (
    VoidScheduler,
    WireSlot,
    min_void_spacing,
    void_gap_for_rate,
)
from repro.pacer.batching import PacedBatcher, Batch
from repro.pacer.eyeq import allocate_hose_rates
from repro.pacer.cpu_model import PacerCpuModel
from repro.pacer.timer_pacer import TimerPacer, TimerRelease

__all__ = [
    "TokenBucket",
    "VMPacer",
    "PacerConfig",
    "VoidScheduler",
    "WireSlot",
    "min_void_spacing",
    "void_gap_for_rate",
    "PacedBatcher",
    "Batch",
    "allocate_hose_rates",
    "PacerCpuModel",
    "TimerPacer",
    "TimerRelease",
]
