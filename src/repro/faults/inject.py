"""Fault injection into the packet-level simulator.

The packet engine is event driven, so a schedule is injected by
pre-registering one callback per fault event on the network's
:class:`~repro.core.engine.EventEngine` (via
:meth:`~repro.core.engine.EventEngine.preschedule_faults`, the shared
core's callback-style fault wiring).  When a callback fires it folds
the event into a :class:`~repro.faults.model.HealthState`, pushes every
changed per-port capacity factor into the matching
:class:`~repro.phynet.port.OutputPort` via
:meth:`~repro.phynet.port.OutputPort.set_fault_factor`, and emits a
``fault.inject`` trace event.

The fluid simulator does *not* use this class -- it attaches the
schedule to its engine as a fault *clock*
(:meth:`~repro.core.engine.EventEngine.attach_fault_clock`) and folds
the cursor into its own next-event search (see
:class:`repro.flowsim.sim.ClusterSim`).  Both styles live on the shared
event core; this module only supplies the packet network's handler.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.model import HealthState
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.events import FaultInjected

__all__ = ["NetworkFaultInjector"]


class NetworkFaultInjector:
    """Replays a :class:`FaultSchedule` against a ``PacketNetwork``.

    Construct it *before* running the simulation: every event is
    pre-scheduled on the network's event loop at construction time.
    Events earlier than the simulator's current time are applied on the
    loop's next dispatch (the engine clamps to ``now``), so attaching an
    injector mid-run is safe but loses the pre-fault history.
    """

    def __init__(self, network, schedule: FaultSchedule, tracer=None):
        self.network = network
        self.schedule = schedule
        self.tracer = tracer if tracer is not None else network.tracer
        self.health = HealthState(network.topology)
        #: Number of events applied so far (for tests / reporting).
        self.applied = 0
        network.sim.preschedule_faults(schedule, self._fire)

    def _fire(self, event: FaultEvent) -> None:
        changed = self.health.apply(event)
        for port_id, factor in changed.items():
            port = self.network.ports.get(port_id)
            if port is not None:
                port.set_fault_factor(factor)
        self.applied += 1
        if self.tracer is not None:
            self.tracer.emit(FaultInjected(
                time=self.network.sim.now, target=event.target.spec,
                action=event.action, factor=event.factor))
