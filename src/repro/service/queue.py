"""Bounded ingress queue with priorities, deadlines and shedding.

The admission service ingests three kinds of work -- fault events,
tenant departures and new admission requests -- through one queue whose
depth is explicitly bounded: when the bound is hit, *new admissions*
are rejected at the door with a retry-after hint (backpressure), and
under sustained overload queued admissions are shed oldest-deadline
first.  Control traffic (faults and departures) is never rejected or
shed: dropping a departure would leak capacity forever and dropping a
fault would leave unsound guarantees standing, so both always enqueue
(they are also naturally self-limiting: each maps to at most one unit
of existing state).

Priorities drain strictly in order ``FAULT < DEPARTURE < ADMIT``, so
recovery work always preempts new admissions.  Admissions drain
earliest-deadline-first and every admission carries a deadline; items
past their deadline at pop time are expired rather than processed.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, List, Optional

__all__ = ["Priority", "IngressItem", "BoundedIngressQueue"]


class Priority(IntEnum):
    """Drain order of the ingress queue (lower drains first)."""

    FAULT = 0
    DEPARTURE = 1
    ADMIT = 2


@dataclass(eq=False)
class IngressItem:
    """One unit of queued work.

    ``payload`` is the operation itself (a request, a tenant id or a
    fault event); ``seq`` is the write-ahead-log sequence number so the
    processor can close the intent record when the item completes.
    """

    priority: Priority
    enqueued_at: float
    payload: Any
    seq: int = -1
    #: Absolute deadline (admissions only); ``None`` = no deadline.
    deadline: Optional[float] = None
    #: Client retry attempt this submission represents (admissions).
    attempt: int = 0
    #: Stable tie-breaker assigned by the queue (arrival order).
    order: int = field(default=0, compare=False)


class BoundedIngressQueue:
    """The service's single ingress point, never deeper than ``capacity``.

    ``offer`` returns ``None`` on acceptance or a positive retry-after
    (seconds) when an admission was rejected for depth; the hint grows
    with the backlog so clients back off harder the fuller the queue
    is.  Control items always enqueue.  ``shed`` evicts queued
    admissions oldest-deadline-first down to a target depth and returns
    them (the service logs and answers each with a retry-after).
    """

    def __init__(self, capacity: int, retry_after_base: float = 0.05):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.retry_after_base = retry_after_base
        self._faults: deque = deque()
        self._departures: deque = deque()
        #: (deadline, order, item) min-heap: pop = earliest deadline.
        self._admits: List[tuple] = []
        self._order = 0
        self.max_depth = 0
        #: Peak *admission* depth -- the class the capacity bound and
        #: shedding govern (control items always enqueue, so total
        #: depth may exceed ``capacity`` by the pending control items).
        self.max_admit_depth = 0

    def __len__(self) -> int:
        return (len(self._faults) + len(self._departures)
                + len(self._admits))

    @property
    def admit_depth(self) -> int:
        """Queued admissions (the only shed-eligible class)."""
        return len(self._admits)

    def retry_after(self, attempt: int = 0) -> float:
        """Backoff hint for a rejected/shed admission.

        Scales with how full the queue is (server-side congestion
        signal) and doubles per client attempt up to 64x (client-side
        exponential backoff), so a hot loop of retries converges to a
        sustainable offered rate.
        """
        fill = len(self) / self.capacity
        return (self.retry_after_base * (1.0 + fill)
                * (2 ** min(attempt, 6)))

    def offer(self, item: IngressItem,
              force: bool = False) -> Optional[float]:
        """Enqueue ``item``; admissions bounce with a retry-after when
        the queue is at capacity.

        ``force`` bypasses the depth bound -- used only by crash
        recovery to re-enqueue intents that were already accepted (and
        logged) before the crash; a subsequent :meth:`shed` pass trims
        any resulting overshoot.
        """
        if (not force and item.priority is Priority.ADMIT
                and len(self) >= self.capacity):
            return self.retry_after(item.attempt)
        item.order = self._order
        self._order += 1
        if item.priority is Priority.FAULT:
            self._faults.append(item)
        elif item.priority is Priority.DEPARTURE:
            self._departures.append(item)
        else:
            deadline = (item.deadline if item.deadline is not None
                        else float("inf"))
            heapq.heappush(self._admits, (deadline, item.order, item))
        depth = len(self)
        if depth > self.max_depth:
            self.max_depth = depth
        if len(self._admits) > self.max_admit_depth:
            self.max_admit_depth = len(self._admits)
        return None

    def pop(self) -> Optional[IngressItem]:
        """Highest-priority item (admissions earliest-deadline-first)."""
        if self._faults:
            return self._faults.popleft()
        if self._departures:
            return self._departures.popleft()
        if self._admits:
            return heapq.heappop(self._admits)[2]
        return None

    def pop_admissions(self, limit: int) -> List[IngressItem]:
        """Up to ``limit`` queued admissions, earliest deadline first."""
        batch: List[IngressItem] = []
        while self._admits and len(batch) < limit:
            batch.append(heapq.heappop(self._admits)[2])
        return batch

    def shed(self, target_depth: int) -> List[IngressItem]:
        """Evict admissions, oldest (nearest) deadline first, until the
        total depth is back at ``target_depth``; returns the victims.

        Only admissions are eligible; if control items alone exceed the
        target the queue sheds every queued admission and stops.
        """
        victims: List[IngressItem] = []
        while self._admits and len(self) > target_depth:
            victims.append(heapq.heappop(self._admits)[2])
        return victims
