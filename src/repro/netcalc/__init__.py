"""Network calculus for Silo's admission control.

Silo bounds switch queuing by describing every traffic source with a concave
*arrival curve* ``A(t)`` (an upper bound on bytes sent in any window of
length ``t``) and every switch port with a *service curve* (a lower bound on
bytes served).  This package implements:

* :class:`~repro.netcalc.curves.Curve` -- piecewise-linear concave curves as
  a minimum of affine pieces, with exact addition, minimum, capping and
  time-shift operators;
* token-bucket and dual-rate (``Bmax``-limited) arrival curves (paper
  Fig. 6a);
* rate-latency service curves;
* queue bounds: horizontal deviation (delay), vertical deviation (backlog)
  and the ``p``-interval over which a queue must empty (Fig. 6b);
* hose-model tenant aggregation ``A_{min(m, N-m)B, mS}`` and egress burst
  propagation ``A_{B, B.c+S}`` (section 4.2.2).
"""

from repro.netcalc.curves import AffinePiece, Curve
from repro.netcalc.arrival import (
    token_bucket,
    dual_rate,
    arrival_for_guarantee,
)
from repro.netcalc.service import RateLatencyService, constant_rate
from repro.netcalc.bounds import (
    backlog_bound,
    delay_bound,
    empty_interval,
    queue_is_stable,
)
from repro.netcalc.aggregate import (
    hose_aggregate,
    egress_curve,
    cap_at_link,
    sum_curves,
)

__all__ = [
    "AffinePiece",
    "Curve",
    "token_bucket",
    "dual_rate",
    "arrival_for_guarantee",
    "RateLatencyService",
    "constant_rate",
    "backlog_bound",
    "delay_bound",
    "empty_interval",
    "queue_is_stable",
    "hose_aggregate",
    "egress_curve",
    "cap_at_link",
    "sum_curves",
]
