#!/usr/bin/env python
"""Quickstart: admit a tenant, read off its guarantees, verify on the wire.

This walks the three steps a Silo deployment performs:

1. describe the datacenter and stand up the controller;
2. admit a tenant with {bandwidth, burst, delay} guarantees -- the
   placement manager finds servers whose switch queues can absorb it;
3. ask for the tenant-visible message-latency bound, then *check it* by
   simulating the tenant's worst-case traffic at packet level.

Run:  python examples/quickstart.py
"""

import random

from repro import NetworkGuarantee, SiloController, TenantClass, TenantRequest
from repro import units
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import EpochBurstApp
from repro.topology import TreeTopology
from repro.workloads import Fixed


def main() -> None:
    # 1. A small datacenter: 2 racks x 4 servers x 4 VM slots, 10 GbE,
    #    shallow-buffered switches (312 KB per port, as in the paper).
    topology = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                            slots_per_server=4,
                            link_rate=units.gbps(10),
                            buffer_bytes=312 * units.KB)
    silo = SiloController(topology)
    print(f"datacenter: {topology}")

    # 2. A tenant that needs predictable small-message latency: 8 VMs,
    #    250 Mbps each, 15 KB burst allowance, 1 ms packet delay, and
    #    bursts serialized at up to 1 Gbps.
    request = TenantRequest(
        n_vms=8,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(250),
                                   burst=15 * units.KB,
                                   delay=units.msec(1),
                                   peak_rate=units.gbps(1)),
        tenant_class=TenantClass.CLASS_A)
    admitted = silo.admit(request)
    if admitted is None:
        raise SystemExit("tenant rejected -- should not happen here")
    print(f"admitted {request.name} on servers "
          f"{sorted(set(admitted.placement.vm_servers))}")

    # 3. The tenant can now bound its own message latency, with no
    #    knowledge of other tenants (section 4.1).
    message = 15 * units.KB
    bound = silo.message_latency_bound(request.tenant_id, message)
    print(f"guaranteed latency for a {message / 1000:.0f} KB message: "
          f"{units.to_msec(bound):.3f} ms")

    # Verify on the simulated wire: all 7 workers burst a full message to
    # the aggregator every 2 ms -- the worst case the guarantee covers.
    net = PacketNetwork(topology, scheme="silo")
    for vm, server in enumerate(admitted.placement.vm_servers):
        net.add_vm(vm, request.tenant_id, server,
                   guarantee=request.guarantee, paced=True)
    metrics = MetricsCollector()
    app = EpochBurstApp(net, metrics, request.tenant_id,
                        list(range(request.n_vms)), Fixed(message),
                        epoch=units.msec(2), rng=random.Random(0))
    app.start(phase=0.0)
    net.sim.run(until=0.1)

    latencies = metrics.latencies(request.tenant_id)
    worst = max(latencies)
    print(f"simulated {len(latencies)} messages: "
          f"median {units.to_usec(sorted(latencies)[len(latencies) // 2]):.0f} us, "
          f"worst {units.to_usec(worst):.0f} us "
          f"(bound {units.to_usec(bound):.0f} us)")
    print("bound holds!" if worst <= bound else "BOUND VIOLATED")
    drops = net.port_stats()["drops"]
    print(f"switch drops: {drops} (placement sized every buffer)")


if __name__ == "__main__":
    main()
