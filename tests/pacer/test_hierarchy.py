"""The Fig. 8 token-bucket hierarchy (FIFO stamping order)."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.pacer.hierarchy import PacerConfig, VMPacer


def make_pacer(bandwidth=units.gbps(1), burst=15 * units.KB,
               peak=units.gbps(10)):
    config = PacerConfig(bandwidth=bandwidth, burst=burst, peak_rate=peak)
    return VMPacer(config)


class TestPacerConfig:
    def test_from_guarantee(self):
        guarantee = NetworkGuarantee(bandwidth=units.gbps(1),
                                     burst=15 * units.KB,
                                     delay=units.msec(1),
                                     peak_rate=units.gbps(10))
        config = PacerConfig.from_guarantee(guarantee)
        assert config.bandwidth == guarantee.bandwidth
        assert config.peak_rate == units.gbps(10)

    def test_burst_floor_is_one_packet(self):
        guarantee = NetworkGuarantee(bandwidth=units.gbps(1), burst=10.0)
        config = PacerConfig.from_guarantee(guarantee)
        assert config.burst == units.MTU


class TestStamping:
    def test_burst_passes_at_peak_rate_spacing(self):
        pacer = make_pacer()
        stamps = [pacer.stamp("d", units.MTU, 0.0) for _ in range(5)]
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        # Within the burst allowance, spacing is set by Bmax.
        expected = units.MTU / units.gbps(10)
        for gap in gaps:
            assert gap == pytest.approx(expected)

    def test_post_burst_spacing_is_bandwidth(self):
        pacer = make_pacer(burst=2 * units.MTU)
        stamps = [pacer.stamp("d", units.MTU, 0.0) for _ in range(10)]
        late_gaps = [b - a for a, b in zip(stamps[4:], stamps[5:])]
        expected = units.MTU / units.gbps(1)
        for gap in late_gaps:
            assert gap == pytest.approx(expected, rel=1e-6)

    def test_stamps_are_monotonic(self):
        pacer = make_pacer()
        stamps = [pacer.stamp("d", 500.0, t * 1e-6)
                  for t in range(50)]
        assert stamps == sorted(stamps)

    def test_destination_rate_is_enforced(self):
        pacer = make_pacer(burst=units.MTU)
        pacer.set_destination_rate("d", units.mbps(100), 0.0)
        stamps = [pacer.stamp("d", units.MTU, 0.0) for _ in range(5)]
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        expected = units.MTU / units.mbps(100)
        for gap in gaps[1:]:
            assert gap == pytest.approx(expected, rel=1e-6)

    def test_earliest_departure_does_not_consume(self):
        pacer = make_pacer()
        t1 = pacer.earliest_departure("d", units.MTU, 0.0)
        t2 = pacer.earliest_departure("d", units.MTU, 0.0)
        assert t1 == t2

    def test_aggregate_rate_conforms_to_tenant_bucket(self):
        """Total stamped bytes over a window never exceed B*t + S."""
        bandwidth = units.gbps(1)
        burst = 15 * units.KB
        pacer = make_pacer(bandwidth=bandwidth, burst=burst)
        stamps = []
        for i in range(300):
            dest = f"d{i % 3}"
            stamps.append(pacer.stamp(dest, units.MTU, 0.0))
        span = stamps[-1] - stamps[0]
        total = 300 * units.MTU
        assert total <= bandwidth * span + burst + 2 * units.MTU
