"""Virtual token buckets: conformance and stamping semantics."""

import pytest

from repro.pacer.token_bucket import TokenBucket


class TestBasics:
    def test_starts_full(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        assert bucket.tokens_at(0.0) == 500.0

    def test_refills_at_rate_up_to_capacity(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        bucket.stamp(500.0, 0.0)
        assert bucket.tokens_at(1.0) == pytest.approx(100.0)
        assert bucket.tokens_at(100.0) == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=1.0).stamp(0.0, 0.0)


class TestStamping:
    def test_burst_departs_immediately(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        assert bucket.stamp(300.0, 0.0) == 0.0
        assert bucket.stamp(200.0, 0.0) == 0.0

    def test_deficit_defers_departure(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        bucket.stamp(500.0, 0.0)
        # 200 bytes need 2 seconds of refill.
        assert bucket.stamp(200.0, 0.0) == pytest.approx(2.0)

    def test_back_to_back_spacing_equals_rate(self):
        bucket = TokenBucket(rate=100.0, capacity=100.0)
        stamps = [bucket.stamp(100.0, 0.0) for _ in range(5)]
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert all(g == pytest.approx(1.0) for g in gaps)

    def test_earlier_now_clamps_to_virtual_clock(self):
        bucket = TokenBucket(rate=100.0, capacity=100.0)
        t1 = bucket.stamp(100.0, 0.0)
        t2 = bucket.stamp(100.0, 0.0)
        # A third packet "arriving" before the clock still departs after.
        t3 = bucket.stamp(100.0, 0.5)
        assert t1 <= t2 <= t3

    def test_long_idle_restores_full_burst(self):
        bucket = TokenBucket(rate=100.0, capacity=300.0)
        for _ in range(5):
            bucket.stamp(300.0, 0.0)
        assert bucket.stamp(300.0, 1000.0) == pytest.approx(1000.0)


class TestConformance:
    def test_output_conforms_to_arrival_curve(self):
        """In any window [t, t+tau] at most capacity + rate*tau bytes may
        be stamped -- the property placement's analysis assumes."""
        rate, capacity, size = 125.0, 1000.0, 150.0
        bucket = TokenBucket(rate=rate, capacity=capacity)
        stamps = [bucket.stamp(size, 0.0) for _ in range(200)]
        for i, start in enumerate(stamps):
            for j in range(i, len(stamps)):
                tau = stamps[j] - start
                sent = (j - i + 1) * size
                assert sent <= capacity + rate * tau + size + 1e-6

    def test_would_stamp_matches_stamp_without_debit(self):
        bucket = TokenBucket(rate=100.0, capacity=500.0)
        bucket.stamp(450.0, 0.0)
        predicted = bucket.would_stamp(200.0, 0.0)
        actual = bucket.stamp(200.0, 0.0)
        assert predicted == pytest.approx(actual)
        # would_stamp twice returns the same answer (no debit happened).
        bucket2 = TokenBucket(rate=100.0, capacity=500.0)
        assert (bucket2.would_stamp(100.0, 0.0)
                == bucket2.would_stamp(100.0, 0.0))


class TestRateChange:
    def test_set_rate_applies_forward(self):
        bucket = TokenBucket(rate=100.0, capacity=100.0)
        bucket.stamp(100.0, 0.0)
        bucket.set_rate(50.0, 0.0)
        # Refill now happens at 50 B/s: a 100 B packet waits 2 s.
        assert bucket.stamp(100.0, 0.0) == pytest.approx(2.0)

    def test_set_rate_validates(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=1.0).set_rate(0.0, 0.0)
