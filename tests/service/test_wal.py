"""Write-ahead log durability and the recovery plan."""

import json

from repro.service import SnapshotStore, WriteAheadLog
from repro.service.wal import recovery_plan, replay_records


class TestWriteAheadLog:
    def test_enq_done_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        seq = wal.log_enq("admit", 1.0, {"request": [1]}, deadline=6.0,
                          source=0)
        wal.log_done(seq, 2.0, "admitted", owner=0, vm_servers=[3])
        wal.close()
        records = list(replay_records(tmp_path / "wal.jsonl"))
        assert [r["t"] for r in records] == ["enq", "done"]
        assert records[0]["seq"] == seq == 0
        assert records[0]["deadline"] == 6.0
        assert records[1]["vm_servers"] == [3]

    def test_reopen_continues_the_sequence(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.log_enq("admit", 1.0, {})
        wal.log_enq("depart", 2.0, {})
        wal.close()
        wal = WriteAheadLog(path)
        assert wal.log_enq("admit", 3.0, {}) == 2
        wal.close()

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.log_enq("admit", 1.0, {})
        wal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "enq", "seq": 1, "kin')  # torn by kill -9
        assert len(list(replay_records(path))) == 1
        # Reopening truncates the torn tail so appended records stay
        # visible to readers (which stop at the first unparseable line).
        wal = WriteAheadLog(path)
        seq = wal.log_enq("admit", 2.0, {})
        wal.close()
        assert seq == 1
        assert [r["seq"] for r in replay_records(path)] == [0, 1]

    def test_missing_file_is_an_empty_log(self, tmp_path):
        assert list(replay_records(tmp_path / "nope.jsonl")) == []


class TestRecoveryPlan:
    def build_log(self, path):
        """enq 0..3; done for 1 then 0 (EDF reordering); 2, 3 open."""
        wal = WriteAheadLog(path)
        for i in range(4):
            wal.log_enq("admit", float(i), {"i": i})
        wal.log_done(1, 4.0, "admitted", owner=0)
        wal.log_done(0, 5.0, "rejected")
        wal.close()

    def test_redo_follows_done_log_order_not_seq_order(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        self.build_log(path)
        redo, reenqueue, total_done = recovery_plan(path, folded_done=0)
        assert [r["seq"] for r in redo] == [1, 0]  # completion order
        assert [r["done"]["outcome"] for r in redo] == ["admitted",
                                                        "rejected"]
        assert [r["seq"] for r in reenqueue] == [2, 3]
        assert total_done == 2

    def test_folded_done_skips_the_snapshot_prefix(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        self.build_log(path)
        redo, reenqueue, total_done = recovery_plan(path, folded_done=1)
        assert [r["seq"] for r in redo] == [0]
        assert [r["seq"] for r in reenqueue] == [2, 3]
        assert total_done == 2

    def test_fully_folded_log_redoes_nothing(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        self.build_log(path)
        redo, reenqueue, total_done = recovery_plan(path, folded_done=2)
        assert redo == []
        assert [r["seq"] for r in reenqueue] == [2, 3]


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        assert store.load() is None
        store.save({"done_count": 3, "cluster": {"x": [1, 2]}})
        assert store.load() == {"done_count": 3, "cluster": {"x": [1, 2]}}

    def test_save_replaces_atomically(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        store.save({"v": 1})
        store.save({"v": 2})
        assert store.load() == {"v": 2}
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_snapshot_is_canonical_json(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        store.save({"b": 1, "a": 2})
        raw = (tmp_path / "snap.json").read_text(encoding="utf-8")
        assert raw == json.dumps({"a": 2, "b": 1}, sort_keys=True)
