"""Workload generators: distributions, memcached-ETC, traffic patterns."""

from repro.workloads.distributions import (
    Distribution,
    Exponential,
    Fixed,
    GeneralizedPareto,
    Uniform,
)
from repro.workloads.memcached import EtcWorkload
from repro.workloads.patterns import (
    all_to_all_pairs,
    all_to_one_pairs,
    permutation_pairs,
)
from repro.workloads.trace import MessageEvent, MessageTrace, TraceReplayer

__all__ = [
    "Distribution",
    "Exponential",
    "Fixed",
    "GeneralizedPareto",
    "Uniform",
    "EtcWorkload",
    "all_to_all_pairs",
    "all_to_one_pairs",
    "permutation_pairs",
    "MessageEvent",
    "MessageTrace",
    "TraceReplayer",
]
