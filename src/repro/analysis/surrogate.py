"""Per-hop queueing surrogate for what-if tail-latency estimation.

Silo's admission control answers *yes/no* from worst-case network
calculus, but an operator planning capacity wants the latency
*distribution* a proposed placement would actually see -- and packet
simulation at that fidelity takes minutes per candidate.  Following the
per-hop decomposition approach of "Scalable Tail Latency Estimation for
Data Center Networks" (see PAPERS.md), this module predicts a class-A
tenant's message-latency distribution in milliseconds of compute:

1. **Calibrate** (:func:`fit_whatif_model`): harvest per-port
   queue-depth samples from a traced packet campaign's ``queues.csv``
   (restricted to ports on the calibration tenants' incast paths), turn
   each depth into the M/D/1-style waiting time ``depth / line_rate``,
   and pool them per port *kind* (``nic-up``, ``tor-down``, ...).  An
   affine quantile correction (offset + spread scale) is then fit
   against the observed message latencies in ``latency.csv``, absorbing
   everything the depth samples cannot see (epoch phasing, pacer
   serialization, within-bucket variance).
2. **Estimate** (:meth:`WhatIfModel.estimate`): for a proposed
   placement, enumerate each sender's directed port path
   (:func:`repro.placement.paths.incast_paths`), scale every hop's
   empirical delay samples by the what-if's burst term -- incast-shared
   down-facing ports grow linearly with ``senders x message_bytes``,
   sender-private up-facing ports with ``message_bytes`` alone --
   compose the hops by discrete convolution on a fixed time grid, mix
   across senders, and read p50/p95/p99/p999 off the resulting CDF.
3. **Anchor**: every estimate is clamped by the worst-case
   network-calculus bound for the same placement (token-bucket hose
   arrival through the concatenated store-and-forward hops, via
   :func:`repro.netcalc.concat.end_to_end_delay_bound`, and the paper's
   ``{B, S, d, Bmax}`` message bound when the tenant holds a delay
   guarantee) so the surrogate can never promise more than the math.

The fitted model is a small JSON document (``to_dict``/``from_dict``)
meant to be committed next to the calibration campaign, so CI and the
README example can score what-ifs without re-simulating anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import units
from repro.analysis.stats import percentile
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import Placement
from repro.netcalc.arrival import token_bucket
from repro.netcalc.concat import end_to_end_delay_bound
from repro.netcalc.service import store_and_forward
from repro.obs.traces import TraceArtifacts, port_kind_of
from repro.placement.paths import IncastPaths, incast_paths
from repro.topology.tree import TreeTopology

__all__ = [
    "REPORT_QUANTILES", "HopSamples", "WhatIfEstimate", "WhatIfModel",
    "fit_whatif_model", "quantile_label",
]

#: The quantiles an estimate reports, matching the evaluation tables.
REPORT_QUANTILES = (50.0, 95.0, 99.0, 99.9)

#: Quantiles the affine correction is fit over -- a denser ladder than
#: the report set so the least-squares slope sees the body *and* tail.
_FIT_QUANTILES = (50.0, 75.0, 90.0, 95.0, 99.0, 99.9)

#: Port kinds whose queue carries the *aggregated* incast toward the
#: receiver; their burst term scales with ``senders x message_bytes``.
#: Every other kind is crossed by a single sender's traffic and scales
#: with the message size alone.
_DOWN_KINDS = frozenset({"tor-down", "agg-down", "core-down"})

#: Key under which the model keeps the all-kinds sample pool, used as a
#: fallback when a what-if path crosses a kind the calibration topology
#: never exercised (e.g. core ports after a single-pod calibration).
_POOLED_KIND = "*"

#: Default convolution grid (seconds).  2 us resolves the NIC drain of
#: a single MTU at 1 Gbps (12 us) without inflating the model file.
_DEFAULT_GRID = 2.0 * units.MICROS

#: Hard ceiling on any single hop-delay sample (seconds); a sample past
#: this is clipped rather than allocating an absurd convolution grid.
_HORIZON = 0.1

#: Guard rails on the fitted spread scale: a degenerate calibration
#: (e.g. two nearly identical quantile points) must not explode or
#: collapse the predicted distribution.
_MIN_SCALE = 0.1
_MAX_SCALE = 10.0

#: Within-bucket sample weighting: a ``queues.csv`` bucket only keeps
#: (min, mean, max) of the depths observed during its interval, so each
#: bucket contributes three delay points with these weight fractions.
_BUCKET_WEIGHTS = ((lambda b: b.vmin, 0.25), (lambda b: b.mean, 0.5),
                   (lambda b: b.vmax, 0.25))


def quantile_label(q: float) -> str:
    """The conventional short label for a quantile: 99.9 -> ``p999``."""
    text = f"{q:g}".replace(".", "")
    return f"p{text}"


@dataclass
class HopSamples:
    """Weighted empirical queue-delay samples for one port kind.

    ``delays`` are seconds a packet arriving at a random instant would
    wait behind the sampled queue depth; ``weights`` are the sample
    counts backing each point (time-proportional, since the simulator
    samples depths on a fixed interval).
    """

    delays: List[float]
    weights: List[float]

    def __post_init__(self) -> None:
        if len(self.delays) != len(self.weights):
            raise ValueError("need one weight per delay sample")

    @property
    def total_weight(self) -> float:
        """Sum of the sample weights."""
        return sum(self.weights)


@dataclass(frozen=True)
class WhatIfEstimate:
    """The surrogate's answer for one proposed placement.

    All times are seconds; ``quantiles`` maps q in [0, 100] to the
    estimated message latency, already clamped to the worst-case
    ``bound`` and floored at the contention-free ``base``.
    """

    quantiles: Dict[float, float]
    bound: float
    base: float
    n_senders: int
    message_bytes: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly summary with latencies in microseconds."""
        out: Dict[str, float] = {
            f"{quantile_label(q)}_us": units.to_usec(v)
            for q, v in sorted(self.quantiles.items())
        }
        out["bound_us"] = units.to_usec(self.bound)
        out["base_us"] = units.to_usec(self.base)
        out["n_senders"] = self.n_senders
        out["message_bytes"] = self.message_bytes
        return out


@dataclass
class WhatIfModel:
    """A calibrated per-hop surrogate, queryable in microseconds of CPU.

    Attributes:
        hop_samples: port kind -> weighted queue-delay samples harvested
            from the calibration trace (plus the ``*`` pooled fallback).
        cal_senders: senders per class-A tenant in the calibration
            scenario; the reference point of the incast burst term.
        cal_message_bytes: the calibration scenario's message size.
        offset: additive quantile correction (seconds) from the fit.
        scale: multiplicative spread correction from the fit.
        grid: convolution resolution in seconds.
        meta: free-form provenance (scenario parameters, sample counts).
    """

    hop_samples: Dict[str, HopSamples]
    cal_senders: int
    cal_message_bytes: float
    offset: float = 0.0
    scale: float = 1.0
    grid: float = _DEFAULT_GRID
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cal_senders < 1:
            raise ValueError("calibration needs at least one sender")
        if self.cal_message_bytes <= 0:
            raise ValueError("calibration message size must be positive")
        if self.grid <= 0:
            raise ValueError("convolution grid must be positive")

    # -- composition ---------------------------------------------------------

    def _kind_pmf(self, kind: str, ratio: float) -> np.ndarray:
        """Probability mass of one hop's queue delay on the time grid.

        ``ratio`` is the what-if burst term: sampled delays are scaled
        linearly before binning.  Unseen kinds fall back to the pooled
        sample set; a kind with no samples at all contributes a
        zero-delay hop.
        """
        samples = self.hop_samples.get(kind)
        if samples is None or not samples.delays:
            samples = self.hop_samples.get(_POOLED_KIND)
        if samples is None or not samples.delays:
            return np.ones(1)
        scaled = [min(d * ratio, _HORIZON) for d in samples.delays]
        n_bins = int(round(max(scaled) / self.grid)) + 1
        pmf = np.zeros(n_bins)
        for delay, weight in zip(scaled, samples.weights):
            pmf[int(round(delay / self.grid))] += weight
        total = pmf.sum()
        if total <= 0:
            return np.ones(1)
        return pmf / total

    def _path_pmf(self, kinds: Sequence[str], ratio_up: float,
                  ratio_down: float) -> np.ndarray:
        """Convolve the per-hop delay pmfs along one sender's path."""
        pmf = np.ones(1)
        for kind in kinds:
            ratio = ratio_down if kind in _DOWN_KINDS else ratio_up
            pmf = np.convolve(pmf, self._kind_pmf(kind, ratio))
        return pmf

    def _raw_quantiles(self,
                       profiles: Sequence[Tuple[Tuple[str, ...], float]],
                       ratio_up: float, ratio_down: float,
                       quantiles: Sequence[float]) -> Dict[float, float]:
        """Quantiles of the mixture latency distribution over senders.

        ``profiles`` holds one ``(hop kinds, base latency)`` entry per
        sender; every sender emits the same number of messages, so the
        tenant-level latency distribution is their uniform mixture.
        """
        if not profiles:
            raise ValueError("need at least one sender profile")
        path_cache: Dict[Tuple[str, ...], np.ndarray] = {}
        parts: List[Tuple[int, np.ndarray]] = []
        for kinds, base in profiles:
            if kinds not in path_cache:
                path_cache[kinds] = self._path_pmf(kinds, ratio_up,
                                                   ratio_down)
            pmf = path_cache[kinds]
            parts.append((int(round(base / self.grid)), pmf))
        length = max(shift + len(pmf) for shift, pmf in parts)
        mix = np.zeros(length)
        for shift, pmf in parts:
            mix[shift:shift + len(pmf)] += pmf
        mix /= mix.sum()
        cdf = np.cumsum(mix)
        out: Dict[float, float] = {}
        for q in quantiles:
            idx = int(np.searchsorted(cdf, q / 100.0, side="left"))
            out[q] = min(idx, length - 1) * self.grid
        return out

    def _profiles(self, paths: IncastPaths, guarantee: NetworkGuarantee,
                  message_bytes: float
                  ) -> List[Tuple[Tuple[str, ...], float]]:
        """One (hop kinds, contention-free base latency) per sender."""
        return _model_profiles(paths, guarantee, message_bytes)

    # -- queries -------------------------------------------------------------

    def estimate(self, topology: TreeTopology, placement: Placement,
                 message_bytes: Optional[float] = None,
                 receiver_index: int = 0) -> WhatIfEstimate:
        """Score one proposed all-to-one placement.

        Args:
            topology: the tree the placement's servers index into.
            placement: the candidate placement (its request must carry
                a guarantee -- best-effort tenants have no burst model).
            message_bytes: per-epoch message size; defaults to the
                calibration scenario's size.
            receiver_index: which VM receives (class-A default: first).

        Returns:
            Estimated latency quantiles, clamped to the worst-case
            bound for the same placement.
        """
        guarantee = placement.request.guarantee
        if guarantee is None:
            raise ValueError("what-if estimates need a guarantee")
        if message_bytes is None:
            message_bytes = self.cal_message_bytes
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        paths = incast_paths(topology, placement, receiver_index)
        n_senders = len(paths.senders)
        if n_senders == 0:
            raise ValueError("what-if needs at least one sender VM")
        ratio_up = message_bytes / self.cal_message_bytes
        ratio_down = (n_senders * message_bytes) / (
            self.cal_senders * self.cal_message_bytes)
        profiles = self._profiles(paths, guarantee, message_bytes)
        raw = self._raw_quantiles(profiles, ratio_up, ratio_down,
                                  REPORT_QUANTILES)
        raw_p50 = raw[50.0]
        base = min(b for _, b in profiles)
        bound = self.worst_case_bound(paths, guarantee, message_bytes)
        calibrated: Dict[float, float] = {}
        floor = base
        for q in sorted(raw):
            value = raw_p50 + self.offset + self.scale * (raw[q] - raw_p50)
            value = min(max(value, floor), bound)
            calibrated[q] = value
            floor = value  # quantiles must be monotone in q
        return WhatIfEstimate(quantiles=calibrated, bound=bound,
                              base=base, n_senders=n_senders,
                              message_bytes=message_bytes)

    def worst_case_bound(self, paths: IncastPaths,
                         guarantee: NetworkGuarantee,
                         message_bytes: float) -> float:
        """Network-calculus ceiling for the estimate (seconds).

        The aggregate incast at the receiver is hose-limited: the
        receiving guarantee caps the sustained rate at ``B`` while each
        of the ``N`` senders may contribute its burst ``S``, so the
        arrival is the token bucket ``(B, N*S)``.  Concatenating the
        longest sender path's store-and-forward servers gives the
        pay-bursts-once queueing bound; serialization at ``Bmax`` and
        the hypervisor hops are added on top.  When the tenant holds a
        delay guarantee the paper's ``{B, S, d, Bmax}`` message bound
        (which Silo's admission enforces) tightens the ceiling.
        """
        n_senders = max(1, len(paths.senders))
        longest: Tuple[object, ...] = ()
        for sender in paths.senders:
            if len(sender.ports) > len(longest):
                longest = sender.ports
        queueing = 0.0
        if longest:
            arrival = token_bucket(guarantee.bandwidth,
                                   n_senders * guarantee.burst)
            services = [store_and_forward(port.capacity)
                        for port in longest]
            queueing = end_to_end_delay_bound(arrival, services)
        bound = (message_bytes / guarantee.effective_peak_rate
                 + queueing + 2 * _vswitch_delay())
        if guarantee.wants_delay:
            bound = min(bound,
                        guarantee.message_latency_bound(message_bytes))
        return bound

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (delays stored in microseconds)."""
        return {
            "format": 1,
            "grid_us": units.to_usec(self.grid),
            "cal_senders": self.cal_senders,
            "cal_message_bytes": self.cal_message_bytes,
            "offset_us": units.to_usec(self.offset),
            "scale": self.scale,
            "hop_samples": {
                kind: {"delays_us": [units.to_usec(d)
                                     for d in samples.delays],
                       "weights": list(samples.weights)}
                for kind, samples in sorted(self.hop_samples.items())
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WhatIfModel":
        """Inverse of :meth:`to_dict`; validates the format tag."""
        if data.get("format") != 1:
            raise ValueError(
                f"unsupported what-if model format {data.get('format')!r}")
        hop_samples = {
            kind: HopSamples(
                delays=[units.usec(d) for d in entry["delays_us"]],
                weights=list(entry["weights"]))
            for kind, entry in data["hop_samples"].items()
        }
        return cls(hop_samples=hop_samples,
                   cal_senders=int(data["cal_senders"]),
                   cal_message_bytes=float(data["cal_message_bytes"]),
                   offset=units.usec(float(data["offset_us"])),
                   scale=float(data["scale"]),
                   grid=units.usec(float(data["grid_us"])),
                   meta=dict(data.get("meta", {})))

    def save(self, path: Union[str, Path]) -> None:
        """Write the model as pretty-printed JSON."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        Path(path).write_text(text + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WhatIfModel":
        """Read a model written by :meth:`save`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))


def _vswitch_delay() -> float:
    """The simulator's hypervisor vswitch hop delay (seconds).

    Imported lazily: :mod:`repro.phynet` itself imports from
    :mod:`repro.analysis`, so a module-level import here would be
    circular.
    """
    from repro.phynet.network import VSWITCH_DELAY
    return VSWITCH_DELAY


def _base_latency(guarantee: NetworkGuarantee, message_bytes: float,
                  ports: Sequence) -> float:
    """Contention-free latency of one message along one sender path.

    Serialization of the whole message at the burst rate ``Bmax``, plus
    one store-and-forward MTU per switch hop, plus the sending and
    receiving hypervisor vswitch hops.
    """
    base = (message_bytes / guarantee.effective_peak_rate
            + 2 * _vswitch_delay())
    for port in ports:
        base += units.MTU / port.capacity
    return base


def _quantize_samples(points: Iterable[Tuple[float, float]],
                      grid: float) -> HopSamples:
    """Merge (delay, weight) points onto the grid to keep models small."""
    binned: Dict[int, float] = {}
    for delay, weight in points:
        if weight <= 0:
            continue
        key = int(round(min(delay, _HORIZON) / grid))
        binned[key] = binned.get(key, 0.0) + weight
    keys = sorted(binned)
    return HopSamples(delays=[k * grid for k in keys],
                      weights=[binned[k] for k in keys])


def fit_whatif_model(topology: TreeTopology,
                     placements: Sequence[Placement],
                     guarantee: NetworkGuarantee,
                     message_bytes: float,
                     artifacts: Sequence[TraceArtifacts],
                     grid: float = _DEFAULT_GRID,
                     meta: Optional[Dict[str, object]] = None
                     ) -> "WhatIfModel":
    """Calibrate a :class:`WhatIfModel` from traced packet campaigns.

    Args:
        topology: the tree the calibration trace ran on.
        placements: the class-A placements that generated the trace
            (re-derivable by replaying admission, which is
            deterministic); only ports on their incast paths contribute
            samples, so idle ports cannot dilute the tail.
        guarantee: the class-A guarantee of the calibration tenants.
        message_bytes: the calibration scenario's epoch message size;
            also selects the class-A rows of ``latency.csv`` (bulk
            traffic uses a different chunk size).
        artifacts: one or more traced runs (``latency.csv`` +
            ``queues.csv`` pairs, e.g. from
            :func:`repro.obs.traces.find_trace_artifacts`).
        grid: convolution resolution in seconds.
        meta: provenance to embed in the model.

    Returns:
        The fitted model, affine-corrected against the observed
        calibration latencies when enough messages are available.
    """
    if not placements:
        raise ValueError("calibration needs at least one placement")
    if not artifacts:
        raise ValueError("calibration needs at least one trace")
    port_caps = {port.name: port.capacity for port in topology.ports}
    profiles: List[Tuple[Tuple[str, ...], float]] = []
    path_port_names = set()
    cal_senders = 0
    for placement in placements:
        paths = incast_paths(topology, placement)
        cal_senders = max(cal_senders, len(paths.senders))
        profiles.extend(_model_profiles(paths, guarantee, message_bytes))
        for sender in paths.senders:
            path_port_names.update(port.name for port in sender.ports)
    if cal_senders == 0:
        raise ValueError("calibration placements have no senders")

    kind_points: Dict[str, List[Tuple[float, float]]] = {}
    observed: List[float] = []
    for artifact in artifacts:
        for port_name, buckets in artifact.queues().items():
            if port_name not in path_port_names:
                continue
            capacity = port_caps.get(port_name)
            if capacity is None:
                continue
            points = kind_points.setdefault(port_kind_of(port_name), [])
            for bucket in buckets:
                if bucket.count <= 0:
                    continue
                for depth_of, fraction in _BUCKET_WEIGHTS:
                    points.append((depth_of(bucket) / capacity,
                                   fraction * bucket.count))
        observed.extend(record.latency
                        for record in artifact.latencies()
                        if record.size == message_bytes)

    hop_samples = {kind: _quantize_samples(points, grid)
                   for kind, points in kind_points.items()}
    pooled = [point for points in kind_points.values()
              for point in points]
    if pooled:
        hop_samples[_POOLED_KIND] = _quantize_samples(pooled, grid)
    model = WhatIfModel(hop_samples=hop_samples, cal_senders=cal_senders,
                        cal_message_bytes=message_bytes, grid=grid,
                        meta=dict(meta or {}))
    model.meta.setdefault("calibration_messages", len(observed))
    if len(observed) >= len(_FIT_QUANTILES):
        _fit_affine(model, profiles, observed)
    return model


def _model_profiles(paths: IncastPaths, guarantee: NetworkGuarantee,
                    message_bytes: float
                    ) -> List[Tuple[Tuple[str, ...], float]]:
    """Sender profiles for a placement (module-level fit helper)."""
    return [
        (tuple(port.kind.value for port in sender.ports),
         _base_latency(guarantee, message_bytes, sender.ports))
        for sender in paths.senders
    ]


def _fit_affine(model: WhatIfModel,
                profiles: Sequence[Tuple[Tuple[str, ...], float]],
                observed: Sequence[float]) -> None:
    """Least-squares fit of the offset/scale quantile correction.

    Regresses the observed calibration quantiles on the raw predicted
    quantiles (centred at the raw median), so at query time
    ``est(q) = raw_p50 + offset + scale * (raw(q) - raw_p50)``.
    """
    raw = model._raw_quantiles(profiles, 1.0, 1.0, _FIT_QUANTILES)
    raw_p50 = raw[50.0]
    xs = np.array([raw[q] - raw_p50 for q in _FIT_QUANTILES])
    ys = np.array([percentile(observed, q) for q in _FIT_QUANTILES])
    spread = float(np.dot(xs - xs.mean(), xs - xs.mean()))
    if spread > 0:
        slope = float(np.dot(xs - xs.mean(), ys - ys.mean())) / spread
    else:
        slope = 1.0
    slope = min(max(slope, _MIN_SCALE), _MAX_SCALE)
    intercept = float(ys.mean()) - slope * float(xs.mean())
    model.scale = slope
    model.offset = intercept - raw_p50
