"""Hybrid-fidelity simulation: packet foreground in a fluid background.

The paper evaluates Silo at two fidelities that cannot meet in one run:
the packet simulator resolves microsecond message latencies but tops
out at a few racks, while the fluid simulator reaches the paper's ~32K
servers but only sees flow-level rates.  :class:`HybridSim` couples
them through the shared event core so fidelity becomes a per-tenant
property:

1. **Shared admission.**  Foreground tenants are placed first, at
   ``t=0``, through the same :class:`repro.placement.base.PlacementManager`
   the background uses -- their bandwidth reservations constrain
   background admission for the whole run, exactly as on a real
   cluster.
2. **Fluid background.**  A :class:`repro.flowsim.sim.ClusterSim` runs
   the background tenant churn with a
   :class:`~repro.hybrid.recorder.PortUsageRecorder` attached to the
   foreground tenants' path ports, producing an exact stepwise
   ``(time, used_rate)`` series per port.
3. **Packet foreground.**  A :class:`repro.phynet.network.PacketNetwork`
   over the *same topology* runs the foreground applications at packet
   fidelity for a window of the background run; each watched port's
   residual fraction ``(capacity - background_used) / capacity`` is
   pre-scheduled onto the packet engine as capacity factors (the same
   per-port mechanism fault degradation uses), so foreground packets
   serialize at exactly the rate the background leaves free.

The coupling is one-way (background drives foreground): a paced
foreground tenant's traffic is bounded by its own reservation, which
admission already subtracted from what the background can use, and at
thousands of background servers its marginal effect on the fluid rates
is below the fluid model's own resolution.  The window construction --
run the packet phase against the residual series starting at
``fg_offset`` -- lets a millisecond-scale packet simulation sample the
background at steady-state occupancy instead of the empty cluster at
``t=0``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro import units
from repro.core.tenant import TenantRequest
from repro.flowsim.sim import ClusterSim, ClusterStats
from repro.flowsim.workload import TenantWorkload
from repro.hybrid.recorder import PortUsageRecorder
from repro.phynet.apps import EpochBurstApp, MemcachedApp
from repro.phynet.metrics import MetricsCollector
from repro.phynet.network import PacketNetwork
from repro.placement.base import PlacementManager
from repro.workloads.distributions import Fixed
from repro.workloads.memcached import EtcWorkload

__all__ = ["ForegroundTenant", "HybridResult", "HybridSim"]

#: Residual capacity factors never drop below this fraction: admission
#: reserved the foreground's share, so a lower value can only be float
#: slop (or a background over-commit bug, which the clamp makes visible
#: as pacing delay rather than a wedged port).
RESIDUAL_FLOOR = 1e-3


@dataclass
class ForegroundTenant:
    """One tenant to run at packet fidelity.

    ``app`` picks the packet application: ``"memcached"`` runs
    request/response RPCs from every other VM against the first
    (section 6.1's testbed shape); ``"burst"`` runs the synchronized
    epoch-burst sender of the fig. 11--14 experiments with
    ``message_bytes`` per epoch of length ``epoch``.
    """

    request: TenantRequest
    app: str = "memcached"
    message_bytes: float = 20 * units.KB
    epoch: float = 1000 * units.MICROS

    def __post_init__(self) -> None:
        if self.app not in ("memcached", "burst"):
            raise ValueError(f"unknown foreground app {self.app!r}")


@dataclass
class HybridResult:
    """Outcome of one hybrid run."""

    #: Fluid-side counters for the background churn.
    background: ClusterStats
    #: Packet-side message records for the foreground tenants.
    metrics: MetricsCollector
    #: One summary dict per *admitted* foreground tenant.
    foreground: List[dict] = field(default_factory=list)
    #: Foreground tenants rejected by the shared admission.
    rejected: int = 0
    #: Ports on foreground paths watched by the recorder.
    watched_ports: int = 0
    #: Residual capacity-factor changes pre-scheduled on the packet engine.
    residual_events: int = 0
    #: Background time at which the packet window starts.
    fg_offset: float = 0.0
    #: Packet window length (seconds).
    fg_horizon: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary (campaign cell format)."""
        bg = self.background
        return {
            "background": {
                "finished_jobs": bg.finished_jobs,
                "mean_occupancy": bg.mean_occupancy,
                "network_utilization": bg.network_utilization,
                "peak_concurrent_flows": bg.peak_concurrent_flows,
                "evicted_jobs": bg.evicted_jobs,
                "rerouted_jobs": bg.rerouted_jobs,
            },
            "foreground": self.foreground,
            "rejected_foreground": self.rejected,
            "watched_ports": self.watched_ports,
            "residual_events": self.residual_events,
            "fg_offset": self.fg_offset,
            "fg_horizon": self.fg_horizon,
        }


class HybridSim:
    """Couples a packet-fidelity foreground to a fluid background.

    Both phases run on their own :class:`repro.core.engine.EventEngine`
    (one per fidelity, one core implementation); the fluid phase's
    exact per-port usage series is replayed into the packet phase as
    pre-scheduled capacity factors.
    """

    def __init__(self, manager: PlacementManager,
                 foreground: List[ForegroundTenant],
                 sharing: str = "reserved", scheme: str = "silo",
                 faults=None, tracer=None):
        """``faults`` (a :class:`repro.faults.FaultSchedule`) applies to
        the *background* cluster; its capacity effects reach the
        foreground through the recorded residual series.  ``scheme``
        configures the packet network (foreground VMs are paced when it
        is ``"silo"`` and they carry a guarantee)."""
        if not foreground:
            raise ValueError("hybrid simulation needs >= 1 foreground "
                             "tenant")
        self.manager = manager
        self.topology = manager.topology
        self.foreground = list(foreground)
        self.sharing = sharing
        self.scheme = scheme
        self.faults = faults
        self.tracer = tracer

    def _foreground_ports(self, vm_servers: List[int]) -> Set[int]:
        """Every directed port on any path between the tenant's servers."""
        ports: Set[int] = set()
        servers = sorted(set(vm_servers))
        for src in servers:
            for dst in servers:
                if src == dst:
                    continue
                ports.update(p.port_id for p in
                             self.topology.path_ports(src, dst))
        return ports

    def run(self, background: TenantWorkload, until: float,
            fg_offset: Optional[object] = None,
            fg_horizon: float = 20e-3, seed: int = 0) -> HybridResult:
        """Run the full hybrid scenario and return a :class:`HybridResult`.

        ``background`` churns for ``until`` seconds of fluid time; the
        packet window replays the residual series from ``fg_offset``
        (default: halfway, where occupancy has typically reached steady
        state) for ``fg_horizon`` seconds.  Passing the string
        ``"peak"`` aligns the window with the recorded peak of total
        background usage on the watched ports -- the deterministic
        worst case, useful when background traffic on the foreground's
        paths is bursty and a fixed offset would usually sample idle
        air.
        """
        if fg_offset is None:
            fg_offset = until / 2.0
        elif fg_offset == "peak":
            pass  # resolved after the fluid phase, below
        elif not 0.0 <= fg_offset <= until:
            raise ValueError("fg_offset must fall inside the background "
                             "horizon")
        # Phase 1: foreground admission through the shared manager.
        placements = []
        rejected = 0
        watch: Set[int] = set()
        for tenant in self.foreground:
            placement = self.manager.place(tenant.request, now=0.0)
            if placement is None:
                rejected += 1
                continue
            placements.append((tenant, placement))
            watch |= self._foreground_ports(placement.vm_servers)

        # Phase 2: fluid background with the usage recorder attached.
        cluster = ClusterSim(self.manager, sharing=self.sharing,
                             tracer=self.tracer, faults=self.faults)
        recorder = cluster.monitor_port_usage(watch)
        bg_stats = cluster.run(background, until)
        if fg_offset == "peak":
            fg_offset = _peak_offset(recorder, until, fg_horizon)

        # Phase 3: packet foreground inside the recorded residuals.
        net = PacketNetwork(self.topology, scheme=self.scheme,
                            tracer=self.tracer)
        metrics = MetricsCollector(tracer=self.tracer)
        rng = random.Random(seed)
        apps = []
        next_vm = 0
        for tenant, placement in placements:
            vm_ids = []
            guarantee = tenant.request.guarantee
            paced = self.scheme == "silo" and guarantee is not None
            for server in placement.vm_servers:
                net.add_vm(next_vm, tenant.request.tenant_id, server,
                           guarantee=guarantee, paced=paced)
                vm_ids.append(next_vm)
                next_vm += 1
            if tenant.app == "memcached":
                app = MemcachedApp(net, metrics, tenant.request.tenant_id,
                                   server_vm=vm_ids[0],
                                   client_vms=vm_ids[1:],
                                   workload=EtcWorkload(), rng=rng)
            else:
                app = EpochBurstApp(net, metrics, tenant.request.tenant_id,
                                    vm_ids, Fixed(tenant.message_bytes),
                                    epoch=tenant.epoch, rng=rng)
            app.start(at=0.0)
            apps.append((tenant, app, vm_ids))
        residual_events = self._preschedule_residuals(
            net, recorder, fg_offset, fg_offset + fg_horizon)
        net.sim.run(until=fg_horizon)

        foreground = []
        for tenant, app, vm_ids in apps:
            tenant_id = tenant.request.tenant_id
            latencies = metrics.latencies(tenant_id)
            summary = {
                "tenant_id": tenant_id,
                "app": tenant.app,
                "vms": len(vm_ids),
                "messages": len(latencies),
                "p50_us": _pct_us(metrics, 50.0, tenant_id, latencies),
                "p99_us": _pct_us(metrics, 99.0, tenant_id, latencies),
            }
            if isinstance(app, MemcachedApp):
                summary["rps"] = app.throughput_rps(fg_horizon)
            foreground.append(summary)
        return HybridResult(background=bg_stats, metrics=metrics,
                            foreground=foreground, rejected=rejected,
                            watched_ports=len(watch),
                            residual_events=residual_events,
                            fg_offset=fg_offset, fg_horizon=fg_horizon)

    def _preschedule_residuals(self, net: PacketNetwork,
                               recorder: PortUsageRecorder,
                               start: float, end: float) -> int:
        """Replay the recorded window as packet-port capacity factors.

        Factors ride the ports' existing fault-degradation machinery
        (:meth:`repro.phynet.port.OutputPort.set_fault_factor`), so
        in-flight serialization stretches and queue drains all behave
        exactly as they do under partial faults.  Returns the number of
        scheduled factor changes.
        """
        capacity: Dict[int, float] = {
            p.port_id: p.capacity for p in self.topology.ports}
        count = 0
        for port_id in sorted(recorder.ports):
            port = net.ports.get(port_id)
            if port is None:
                continue
            cap = capacity[port_id]
            last = 1.0  # ports start undegraded
            for when, used in recorder.window(port_id, start, end):
                factor = (cap - used) / cap
                if factor < RESIDUAL_FLOOR:
                    factor = RESIDUAL_FLOOR
                elif factor > 1.0:
                    factor = 1.0
                if factor == last:
                    continue
                net.sim.schedule_at(when, port.set_fault_factor, factor)
                count += 1
                last = factor
        return count


def _peak_offset(recorder: PortUsageRecorder, until: float,
                 fg_horizon: float) -> float:
    """Window start maximizing total watched-port usage (``"peak"`` mode).

    Candidates are the recorded breakpoint times (usage is stepwise
    constant, so the maximum of the total-usage step function is
    attained at one of them); ties break toward the earliest time for
    determinism.  Falls back to the midpoint when the background never
    touched a watched port, and is clamped so the whole packet window
    fits inside the fluid horizon.
    """
    times = sorted({t for series in recorder.series.values()
                    for t, _ in series if t > 0.0})
    best_time, best_total = None, 0.0
    for t in times:
        total = sum(recorder.used_at(p, t) for p in recorder.ports)
        if total > best_total:
            best_time, best_total = t, total
    if best_time is None:
        return until / 2.0
    return max(0.0, min(best_time, until - fg_horizon))


def _pct_us(metrics: MetricsCollector, q: float, tenant_id: int,
            latencies: List[float]) -> Optional[float]:
    """Latency percentile in microseconds, ``None`` with no messages."""
    if not latencies:
        return None
    return units.to_usec(metrics.latency_percentile(q, tenant_id))
