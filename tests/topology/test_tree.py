"""Topology structure, paths and queue-capacity arithmetic."""

import pytest

from repro import units
from repro.topology import PortKind, TreeTopology


@pytest.fixture
def topo():
    return TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


class TestStructure:
    def test_counts(self, topo):
        assert topo.n_racks == 4
        assert topo.n_servers == 12
        assert topo.n_slots == 48

    def test_rack_and_pod_of(self, topo):
        assert topo.rack_of(0) == 0
        assert topo.rack_of(5) == 1
        assert topo.pod_of(5) == 0
        assert topo.pod_of(6) == 1

    def test_servers_in_rack(self, topo):
        assert list(topo.servers_in_rack(1)) == [3, 4, 5]

    def test_servers_in_pod(self, topo):
        assert list(topo.servers_in_pod(1)) == [6, 7, 8, 9, 10, 11]

    def test_out_of_range_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.rack_of(12)
        with pytest.raises(ValueError):
            topo.servers_in_rack(4)

    def test_oversubscribed_uplinks(self, topo):
        # 3 servers x 10G / 5 = 6 Gbps, floored at one link's rate: an
        # uplink is never slower than a single server link.
        assert topo.tor_uplink_rate == pytest.approx(units.gbps(10))
        assert topo.agg_uplink_rate == pytest.approx(units.gbps(10))

    def test_oversubscription_bites_at_scale(self):
        big = TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=40,
                           slots_per_server=8, link_rate=units.gbps(10),
                           oversubscription=5.0)
        # 40 servers x 10G / 5 = 80 Gbps ToR uplink.
        assert big.tor_uplink_rate == pytest.approx(units.gbps(80))
        # 4 racks x 80G / 5 = 64 Gbps aggregation uplink.
        assert big.agg_uplink_rate == pytest.approx(units.gbps(64))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            TreeTopology(n_pods=0)
        with pytest.raises(ValueError):
            TreeTopology(oversubscription=0.5)


class TestPorts:
    def test_unique_port_ids(self, topo):
        ids = [p.port_id for p in topo.ports]
        assert len(ids) == len(set(ids))

    def test_port_count(self, topo):
        # 2 per server + 2 per rack + 2 per pod.
        assert len(topo.ports) == 2 * 12 + 2 * 4 + 2 * 2

    def test_queue_capacity(self, topo):
        nic = topo.nic_up(0)
        assert nic.queue_capacity == pytest.approx(
            312 * units.KB / units.gbps(10))


class TestPaths:
    def test_same_server_is_empty(self, topo):
        assert topo.path_ports(3, 3) == []

    def test_same_rack_two_hops(self, topo):
        path = topo.path_ports(0, 2)
        kinds = [p.kind for p in path]
        assert kinds == [PortKind.NIC_UP, PortKind.TOR_DOWN]
        assert path[0].index == 0
        assert path[1].index == 2

    def test_same_pod_four_hops(self, topo):
        path = topo.path_ports(0, 4)
        kinds = [p.kind for p in path]
        assert kinds == [PortKind.NIC_UP, PortKind.TOR_UP,
                         PortKind.AGG_DOWN, PortKind.TOR_DOWN]

    def test_cross_pod_six_hops(self, topo):
        path = topo.path_ports(0, 11)
        kinds = [p.kind for p in path]
        assert kinds == [PortKind.NIC_UP, PortKind.TOR_UP, PortKind.AGG_UP,
                         PortKind.CORE_DOWN, PortKind.AGG_DOWN,
                         PortKind.TOR_DOWN]

    def test_path_queue_capacity_monotone_in_scope(self, topo):
        same_rack = topo.path_queue_capacity(0, 1)
        same_pod = topo.path_queue_capacity(0, 3)
        cross_pod = topo.path_queue_capacity(0, 6)
        assert same_rack < same_pod < cross_pod


class TestScopes:
    def test_scope_capacity_matches_paths(self, topo):
        assert topo.scope_queue_capacity("server") == 0.0
        assert topo.scope_queue_capacity("rack") == pytest.approx(
            topo.path_queue_capacity(0, 1))
        assert topo.scope_queue_capacity("pod") == pytest.approx(
            topo.path_queue_capacity(0, 3))
        assert topo.scope_queue_capacity("cluster") == pytest.approx(
            topo.path_queue_capacity(0, 6))

    def test_widest_scope_for_delay(self, topo):
        rack_cap = topo.scope_queue_capacity("rack")
        pod_cap = topo.scope_queue_capacity("pod")
        assert topo.widest_scope_for_delay(rack_cap) == "rack"
        assert topo.widest_scope_for_delay(pod_cap) == "pod"
        assert topo.widest_scope_for_delay(1.0) == "cluster"

    def test_tight_delay_allows_server_only(self, topo):
        tiny = topo.scope_queue_capacity("rack") / 10
        assert topo.widest_scope_for_delay(tiny) == "server"

    def test_invalid_scope_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.scope_queue_capacity("continent")


class TestUpstreamQueueCapacity:
    def test_nic_has_no_upstream(self, topo):
        assert topo.upstream_queue_capacity(PortKind.NIC_UP, "cluster") == 0

    def test_tor_down_grows_with_scope(self, topo):
        rack = topo.upstream_queue_capacity(PortKind.TOR_DOWN, "rack")
        pod = topo.upstream_queue_capacity(PortKind.TOR_DOWN, "pod")
        cluster = topo.upstream_queue_capacity(PortKind.TOR_DOWN, "cluster")
        assert rack < pod < cluster

    def test_rack_scope_tor_down_sees_only_nic(self, topo):
        assert topo.upstream_queue_capacity(
            PortKind.TOR_DOWN, "rack") == pytest.approx(
            topo.nic_up(0).queue_capacity)
