"""Per-port reservation state and its conservative aggregate curve."""

import pytest

from repro import units
from repro.placement.state import Contribution, PortState
from repro.topology.switch import Port, PortKind


def make_port(capacity=units.gbps(10), buffer_bytes=312 * units.KB):
    return Port(port_id=0, kind=PortKind.TOR_DOWN, capacity=capacity,
                buffer_bytes=buffer_bytes)


def contribution(bandwidth=units.gbps(1), burst=50 * units.KB,
                 peak=units.gbps(5), slack=3 * units.MTU):
    return Contribution(bandwidth=bandwidth, burst=burst, peak_rate=peak,
                        packet_slack=slack)


class TestContribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            Contribution(bandwidth=-1, burst=0, peak_rate=0,
                         packet_slack=0)
        with pytest.raises(ValueError):
            Contribution(bandwidth=10, burst=0, peak_rate=5,
                         packet_slack=0)


class TestPortState:
    def test_add_remove_roundtrip(self):
        state = PortState(make_port())
        c = contribution()
        state.add(c)
        state.remove(c)
        assert state.bandwidth == 0.0
        assert state.burst == 0.0
        assert state.peak_rate == 0.0

    def test_drift_clamped_to_zero(self):
        state = PortState(make_port())
        c = contribution()
        state.add(c)
        state.remove(c)
        state.remove(Contribution(0.0, 0.0, 0.0, 0.0))
        assert state.bandwidth >= 0.0

    def test_empty_port_has_one_packet_floor(self):
        state = PortState(make_port())
        # An empty port can still have one MTU in flight.
        assert state.backlog() <= units.MTU + 1e-6

    def test_queue_bound_grows_with_contributions(self):
        state = PortState(make_port())
        before = state.queue_bound()
        state.add(contribution())
        mid = state.queue_bound()
        state.add(contribution())
        after = state.queue_bound()
        assert before <= mid <= after

    def test_admits_rejects_bandwidth_overflow(self):
        state = PortState(make_port(capacity=units.gbps(10)))
        big = contribution(bandwidth=units.gbps(11), peak=units.gbps(11))
        assert not state.admits(big)

    def test_admits_rejects_buffer_overflow(self):
        # The burst converges from two 10G senders onto a 10G port, so
        # half of it queues: 250 KB into a 100 KB buffer fails.
        state = PortState(make_port(buffer_bytes=100 * units.KB))
        bursty = contribution(burst=500 * units.KB, peak=units.gbps(20))
        assert not state.admits(bursty)

    def test_admits_line_rate_burst(self):
        # A burst arriving at exactly line rate never queues, no matter
        # its size.
        state = PortState(make_port(buffer_bytes=100 * units.KB))
        smooth = contribution(burst=500 * units.KB, peak=units.gbps(10))
        assert state.admits(smooth)

    def test_admits_accepts_conforming(self):
        state = PortState(make_port())
        assert state.admits(contribution())

    def test_aggregate_curve_is_conservative(self):
        """The rebuilt curve must dominate the exact sum of the parts."""
        from repro.netcalc.aggregate import sum_curves
        from repro.netcalc.arrival import dual_rate
        state = PortState(make_port())
        parts = []
        for i in range(1, 4):
            c = contribution(bandwidth=units.gbps(0.5) * i,
                             burst=20 * units.KB * i,
                             peak=units.gbps(2) * i,
                             slack=i * units.MTU)
            state.add(c)
            parts.append(dual_rate(c.bandwidth, c.burst, c.peak_rate,
                                   packet_size=c.packet_slack))
        exact = sum_curves(parts)
        conservative = state.aggregate_curve()
        assert conservative.dominates(exact)

    def test_bandwidth_only_check(self):
        state = PortState(make_port(capacity=units.gbps(10)))
        ok = contribution(bandwidth=units.gbps(9), peak=units.gbps(9),
                          burst=10 * units.MB)  # burst ignored
        assert state.admits_bandwidth(ok)
        assert not state.admits_bandwidth(
            contribution(bandwidth=units.gbps(11), peak=units.gbps(11)))

    def test_residual_bandwidth(self):
        state = PortState(make_port(capacity=units.gbps(10)))
        state.add(contribution(bandwidth=units.gbps(4)))
        assert state.residual_bandwidth == pytest.approx(units.gbps(6))
