"""Bounded-memory recording of a scalar signal over simulation time.

Hot paths call :meth:`TimeSeries.record` on every change of the signal
(queue depth, link utilization, shaper backlog); recording must therefore
be O(1) and the stored state must not grow with the run length.  Two
complementary reductions, each optional:

* **fixed-interval buckets** -- time is cut into ``interval``-second
  buckets and each keeps count/mean/min/max/last.  This is the
  figure-ready form: plot ``max`` per bucket for worst-case queue
  occupancy, ``mean`` for utilization.
* **reservoir sampling** -- a uniform sample of ``reservoir_size`` raw
  ``(time, value)`` points (Vitter's algorithm R with a fixed seed, so
  runs stay reproducible).  This preserves outliers' *values* without
  binning and feeds CDFs.

Like the trace sinks, a series is attached by handing it to a component
(``port.depth_series = TimeSeries(...)``); components guard recording
behind ``if series is not None`` so the disabled path stays free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import IO, List, Optional, Tuple, Union

__all__ = ["Bucket", "TimeSeries"]


@dataclass
class Bucket:
    """Aggregates of one fixed-length time bucket."""

    start: float
    count: int
    mean: float
    vmin: float
    vmax: float
    last: float


class TimeSeries:
    """Records ``(time, value)`` observations with bounded memory."""

    __slots__ = ("name", "interval", "reservoir_size", "count", "last",
                 "last_time", "_buckets", "_open_start", "_open_count",
                 "_open_sum", "_open_min", "_open_max", "_open_last",
                 "_samples", "_rng")

    def __init__(self, name: str = "", interval: Optional[float] = None,
                 reservoir_size: int = 0, seed: int = 0):
        if interval is not None and interval <= 0:
            raise ValueError("bucket interval must be positive")
        if reservoir_size < 0:
            raise ValueError("reservoir size must be >= 0")
        if interval is None and reservoir_size == 0:
            raise ValueError("enable bucketing, a reservoir, or both")
        self.name = name
        self.interval = interval
        self.reservoir_size = reservoir_size
        self.count = 0
        self.last = 0.0
        self.last_time = 0.0
        self._buckets: List[Bucket] = []
        self._open_start: Optional[float] = None
        self._open_count = 0
        self._open_sum = 0.0
        self._open_min = 0.0
        self._open_max = 0.0
        self._open_last = 0.0
        self._samples: List[Tuple[float, float]] = []
        self._rng = random.Random(seed)

    # -- recording -----------------------------------------------------------

    def record(self, t: float, value: float) -> None:
        """Observe ``value`` at time ``t`` (``t`` should be non-decreasing;
        a stray earlier observation folds into the current bucket)."""
        self.count += 1
        self.last = value
        self.last_time = t
        interval = self.interval
        if interval is not None:
            start = (t // interval) * interval
            if self._open_start is None:
                self._open_bucket(start, value)
            elif start > self._open_start:
                self._close_bucket()
                self._open_bucket(start, value)
            else:
                self._open_count += 1
                self._open_sum += value
                if value < self._open_min:
                    self._open_min = value
                if value > self._open_max:
                    self._open_max = value
                self._open_last = value
        size = self.reservoir_size
        if size:
            if len(self._samples) < size:
                self._samples.append((t, value))
            else:
                slot = self._rng.randrange(self.count)
                if slot < size:
                    self._samples[slot] = (t, value)

    def _open_bucket(self, start: float, value: float) -> None:
        self._open_start = start
        self._open_count = 1
        self._open_sum = value
        self._open_min = value
        self._open_max = value
        self._open_last = value

    def _close_bucket(self) -> None:
        self._buckets.append(Bucket(
            start=self._open_start, count=self._open_count,
            mean=self._open_sum / self._open_count,
            vmin=self._open_min, vmax=self._open_max,
            last=self._open_last))

    # -- export --------------------------------------------------------------

    def buckets(self) -> List[Bucket]:
        """All buckets, including the still-open one."""
        closed = list(self._buckets)
        if self._open_start is not None:
            closed.append(Bucket(
                start=self._open_start, count=self._open_count,
                mean=self._open_sum / self._open_count,
                vmin=self._open_min, vmax=self._open_max,
                last=self._open_last))
        return closed

    def samples(self) -> List[Tuple[float, float]]:
        """Reservoir sample of raw ``(time, value)`` points, time-ordered."""
        return sorted(self._samples)

    def write_csv(self, target: Union[str, "IO[str]"]) -> None:
        """Dump the bucketed series (or raw samples) as CSV.

        Bucket mode columns: ``time,count,mean,min,max,last``; pure
        reservoir mode: ``time,value``.
        """
        if hasattr(target, "write"):
            self._write_csv(target)  # type: ignore[arg-type]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                self._write_csv(handle)

    def _write_csv(self, out: "IO[str]") -> None:
        if self.interval is not None:
            out.write("time,count,mean,min,max,last\n")
            for b in self.buckets():
                out.write(f"{b.start:.9g},{b.count},{b.mean:.9g},"
                          f"{b.vmin:.9g},{b.vmax:.9g},{b.last:.9g}\n")
        else:
            out.write("time,value\n")
            for t, value in self.samples():
                out.write(f"{t:.9g},{value:.9g}\n")

    def __repr__(self) -> str:
        mode = []
        if self.interval is not None:
            mode.append(f"interval={self.interval:g}")
        if self.reservoir_size:
            mode.append(f"reservoir={self.reservoir_size}")
        return (f"TimeSeries({self.name!r}, {', '.join(mode)}, "
                f"n={self.count})")
