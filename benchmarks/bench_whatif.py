"""What-if estimator benchmark: accuracy and speedup floors.

Two floors over :mod:`repro.analysis.surrogate`:

* **accuracy** -- calibrate on the committed fig11-style calibration
  trace (``campaigns/whatif-error/calibration``), run the packet
  simulator on a held-out seed as ground truth, and assert the
  estimator's relative p99 error stays under the 15% acceptance floor;
* **speed** -- assert scoring the same what-if with the calibrated
  surrogate is at least 100x faster than simulating it (it is usually
  four orders of magnitude).

Run::

    PYTHONPATH=src python benchmarks/bench_whatif.py          # full
    PYTHONPATH=src python benchmarks/bench_whatif.py --quick  # CI smoke

Quick mode shortens the simulated ground-truth run and never
overwrites the committed ``BENCH_whatif.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import units
from repro.analysis.stats import percentile
from repro.campaign.scenarios import trace_cell
from repro.cli import _calibrate_whatif, build_parser
from repro.core.guarantees import NetworkGuarantee
from repro.core.silo import SiloController
from repro.core.tenant import TenantClass, TenantRequest, reset_tenant_ids
from repro.obs.traces import find_trace_artifacts
from repro.topology import TreeTopology

CAL_DIR = _REPO / "campaigns" / "whatif-error" / "calibration"

#: Acceptance floors (see ISSUE/EXPERIMENTS): the estimator must land
#: within 15% of the simulated p99 and answer at least 100x faster.
P99_ERROR_FLOOR = 0.15
SPEEDUP_FLOOR = 100.0

#: Ground-truth seed, disjoint from the whatif-error sweep's seeds and
#: from every derive_seed(seed, "whatif-cal") calibration seed.
HELD_OUT_SEED = 5

#: The fig11-style scenario shared with the whatif-error sweep.
SCENARIO = dict(vms=12, bandwidth_mbps=1000.0, burst_kb=15.0,
                delay_us=1000.0, bmax_gbps=1.0, class_a=2, class_b=1,
                message_kb=15.0, epoch_us=2000.0,
                queue_interval_us=100.0, pods=2, racks_per_pod=4,
                servers_per_rack=10, slots=8, link_gbps=10.0,
                oversubscription=5.0, buffer_kb=312.0)


def _topology() -> TreeTopology:
    return TreeTopology(
        n_pods=SCENARIO["pods"],
        racks_per_pod=SCENARIO["racks_per_pod"],
        servers_per_rack=SCENARIO["servers_per_rack"],
        slots_per_server=SCENARIO["slots"],
        link_rate=units.gbps(SCENARIO["link_gbps"]),
        oversubscription=SCENARIO["oversubscription"],
        buffer_bytes=SCENARIO["buffer_kb"] * units.KB)


def _guarantee() -> NetworkGuarantee:
    return NetworkGuarantee(
        bandwidth=units.mbps(SCENARIO["bandwidth_mbps"]),
        burst=SCENARIO["burst_kb"] * units.KB,
        delay=SCENARIO["delay_us"] * units.MICROS,
        peak_rate=units.gbps(SCENARIO["bmax_gbps"]))


def run(quick: bool, out) -> dict:
    duration_ms = 20.0 if quick else 40.0
    message_bytes = SCENARIO["message_kb"] * units.KB

    # Calibrate from the committed trace campaign (timed separately:
    # a capacity-planning loop fits once and queries many times).
    args = build_parser().parse_args(
        ["whatif", "--calibrate", str(CAL_DIR)])
    t0 = time.perf_counter()
    model = _calibrate_whatif(args)
    fit_wall = time.perf_counter() - t0

    # Ground truth: simulate the held-out what-if with the packet sim.
    with tempfile.TemporaryDirectory(prefix="bench-whatif-") as tmp:
        reset_tenant_ids()
        t0 = time.perf_counter()
        trace_cell(seed=HELD_OUT_SEED, duration_ms=duration_ms,
                   faults=None, artifact_dir=tmp, **SCENARIO)
        sim_wall = time.perf_counter() - t0
        observed = [record.latency
                    for artifact in find_trace_artifacts(tmp)
                    for record in artifact.latencies()
                    if record.size == message_bytes]
    sim_p99 = percentile(observed, 99.0)

    # The same what-if through the surrogate (admission replay outside
    # the timer: the query being benchmarked is the latency estimate).
    reset_tenant_ids()
    topology = _topology()
    silo = SiloController(topology)
    placements = []
    for _ in range(SCENARIO["class_a"]):
        admitted = silo.admit(TenantRequest(
            n_vms=SCENARIO["vms"], guarantee=_guarantee(),
            tenant_class=TenantClass.CLASS_A))
        assert admitted is not None
        placements.append(admitted.placement)
    t0 = time.perf_counter()
    estimates = [model.estimate(topology, placement, message_bytes)
                 for placement in placements]
    est_wall = time.perf_counter() - t0
    est_p99 = sum(e.quantiles[99.0] for e in estimates) / len(estimates)

    rel_error = abs(est_p99 - sim_p99) / sim_p99
    speedup = sim_wall / est_wall
    report = {
        "quick": quick,
        "duration_ms": duration_ms,
        "messages": len(observed),
        "sim_p99_us": round(units.to_usec(sim_p99), 3),
        "est_p99_us": round(units.to_usec(est_p99), 3),
        "rel_error_p99": round(rel_error, 4),
        "sim_wall_s": round(sim_wall, 4),
        "fit_wall_s": round(fit_wall, 4),
        "estimate_wall_s": round(est_wall, 6),
        "speedup": round(speedup, 1),
        "speedup_including_fit": round(sim_wall / (fit_wall + est_wall),
                                       1),
    }
    print(f"sim    p99 {report['sim_p99_us']:>8.1f} us  "
          f"({len(observed)} messages, {sim_wall:.2f}s wall)")
    print(f"whatif p99 {report['est_p99_us']:>8.1f} us  "
          f"(fit {fit_wall * 1e3:.1f} ms + query "
          f"{est_wall * 1e3:.2f} ms)")
    print(f"relative p99 error {rel_error:.1%} "
          f"(floor {P99_ERROR_FLOOR:.0%})  "
          f"speedup {speedup:.0f}x (floor {SPEEDUP_FLOOR:.0f}x)")
    assert rel_error <= P99_ERROR_FLOOR, (
        f"estimator p99 error {rel_error:.1%} above the "
        f"{P99_ERROR_FLOOR:.0%} floor", report)
    assert speedup >= SPEEDUP_FLOOR, (
        f"estimator speedup {speedup:.0f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x floor", report)
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True)
                       + "\n", encoding="utf-8")
        print(f"\nwrote {out}")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short ground-truth run; never overwrites "
                             "the committed baseline")
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_whatif.json for a full run)")
    args = parser.parse_args(argv)
    out = args.out
    if out is None and not args.quick:
        out = _REPO / "BENCH_whatif.json"
    run(args.quick, out)


if __name__ == "__main__":
    main()
