"""Arrival-curve constructors and service curves."""

import pytest

from repro import units
from repro.netcalc.arrival import arrival_for_guarantee, dual_rate, token_bucket
from repro.netcalc.service import (
    RateLatencyService,
    constant_rate,
    store_and_forward,
)


class TestTokenBucket:
    def test_shape(self):
        curve = token_bucket(100.0, 50.0)
        assert curve(0.0) == 50.0
        assert curve(1.0) == 150.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            token_bucket(-1.0, 0.0)
        with pytest.raises(ValueError):
            token_bucket(1.0, -1.0)


class TestDualRate:
    def test_two_pieces(self):
        curve = dual_rate(rate=10.0, burst=100.0, peak_rate=50.0,
                          packet_size=5.0)
        assert curve.peak_rate == 50.0
        assert curve.sustained_rate == 10.0
        assert curve(0.0) == 5.0

    def test_degenerates_without_headroom(self):
        curve = dual_rate(rate=10.0, burst=100.0, peak_rate=10.0,
                          packet_size=5.0)
        assert len(curve.pieces) == 1
        assert curve.burst == 5.0

    def test_degenerates_when_burst_fits_one_packet(self):
        curve = dual_rate(rate=10.0, burst=3.0, peak_rate=100.0,
                          packet_size=5.0)
        assert len(curve.pieces) == 1

    def test_rejects_peak_below_rate(self):
        with pytest.raises(ValueError):
            dual_rate(rate=10.0, burst=1.0, peak_rate=5.0)

    def test_matches_paper_figure_6a(self):
        """A'(t) lies below A(t) = Bt + S everywhere, equal eventually."""
        B, S, Bmax = units.gbps(1), 100 * units.KB, units.gbps(10)
        plain = token_bucket(B, S)
        limited = dual_rate(B, S, Bmax)
        assert plain.dominates(limited)
        # After the burst is drained at Bmax the curves coincide.
        t_join = (S - units.MTU) / (Bmax - B)
        assert limited(2 * t_join) == pytest.approx(plain(2 * t_join),
                                                    rel=1e-6)


class TestArrivalForGuarantee:
    def test_without_peak_rate_is_token_bucket(self):
        curve = arrival_for_guarantee(10.0, 100.0)
        assert len(curve.pieces) == 1

    def test_with_peak_rate_is_dual(self):
        curve = arrival_for_guarantee(10.0, 100.0, peak_rate=50.0,
                                      packet_size=1.0)
        assert len(curve.pieces) == 2


class TestServiceCurves:
    def test_constant_rate(self):
        beta = constant_rate(10.0)
        assert beta(0.0) == 0.0
        assert beta(2.0) == 20.0

    def test_rate_latency(self):
        beta = RateLatencyService(rate=10.0, latency=1.0)
        assert beta(0.5) == 0.0
        assert beta(1.0) == 0.0
        assert beta(2.0) == 10.0

    def test_store_and_forward_latency(self):
        beta = store_and_forward(rate=1500.0, packet_size=1500.0)
        assert beta.latency == pytest.approx(1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RateLatencyService(rate=0.0)
        with pytest.raises(ValueError):
            RateLatencyService(rate=1.0, latency=-1.0)
