"""Cross-module integration: placement -> pacing -> packet network.

These tests exercise the full Silo pipeline the way the paper's evaluation
does: admit tenants through the placement manager, configure pacers from
the admitted guarantees, drive traffic through the packet simulator, and
check that the tenant-visible latency bound actually holds.
"""

import random

import pytest

from repro import SiloController, units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp, EpochBurstApp
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.patterns import all_to_all_pairs


def build_network_from_controller(controller, scheme="silo"):
    """Instantiate the packet network from admitted placements."""
    net = PacketNetwork(controller.topology, scheme=scheme)
    vm_ids = {}
    next_vm = 0
    for tenant in controller.tenants.values():
        ids = []
        for server in tenant.placement.vm_servers:
            net.add_vm(next_vm, tenant.tenant_id, server,
                       guarantee=tenant.request.guarantee,
                       paced=tenant.pacer_config is not None,
                       pacer_config=tenant.pacer_config)
            ids.append(next_vm)
            next_vm += 1
        vm_ids[tenant.tenant_id] = ids
    return net, vm_ids


class TestGuaranteeHolds:
    def test_admitted_tenant_meets_its_latency_bound_under_contention(self):
        """The headline property: an admitted class-A tenant's messages
        finish within the bound it computed from {B, S, d, Bmax},
        regardless of a bandwidth-hungry neighbour."""
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                            slots_per_server=6,
                            link_rate=units.gbps(10))
        controller = SiloController(topo)
        message_size = 15 * units.KB
        class_a = TenantRequest(
            n_vms=6,
            guarantee=NetworkGuarantee(bandwidth=units.mbps(250),
                                       burst=15 * units.KB,
                                       delay=units.msec(1),
                                       peak_rate=units.gbps(1)),
            tenant_class=TenantClass.CLASS_A)
        class_b = TenantRequest(
            n_vms=6,
            guarantee=NetworkGuarantee(bandwidth=units.gbps(2),
                                       burst=1.5 * units.KB),
            tenant_class=TenantClass.CLASS_B)
        assert controller.admit(class_a) is not None
        assert controller.admit(class_b) is not None
        bound = controller.message_latency_bound(class_a.tenant_id,
                                                 message_size)

        net, vm_ids = build_network_from_controller(controller)
        metrics = MetricsCollector()
        rng = random.Random(11)
        app_a = EpochBurstApp(net, metrics, class_a.tenant_id,
                              vm_ids[class_a.tenant_id],
                              Fixed(message_size),
                              epoch=2400 * units.MICROS, rng=rng)
        app_b = BulkApp(net, metrics, class_b.tenant_id,
                        all_to_all_pairs(vm_ids[class_b.tenant_id]),
                        chunk_size=units.MB)
        app_a.start()
        app_b.start()
        net.sim.run(until=0.06)

        latencies = metrics.latencies(class_a.tenant_id)
        assert len(latencies) >= 100
        assert max(latencies) <= bound
        # The class-B tenant still gets (close to) its reserved hose.
        assert app_b.throughput(0.06) >= 0.85 * 6 * units.gbps(2)
        # And no switch dropped anything: the placement sized the buffers.
        assert net.port_stats()["drops"] == 0

    def test_no_loss_for_any_admitted_mix(self):
        """Admit a random mix until first rejection, blast worst-case
        all-to-one bursts, and require zero drops: the Fig. 5 property."""
        rng = random.Random(5)
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=3,
                            slots_per_server=4,
                            link_rate=units.gbps(10))
        controller = SiloController(topo)
        tenants = []
        for _ in range(10):
            request = TenantRequest(
                n_vms=rng.randint(4, 8),
                guarantee=NetworkGuarantee(
                    bandwidth=units.mbps(rng.choice([100, 250, 500])),
                    burst=rng.choice([5, 10, 15]) * units.KB,
                    delay=units.msec(1),
                    peak_rate=units.gbps(1)),
                tenant_class=TenantClass.CLASS_A)
            if controller.admit(request) is not None:
                tenants.append(request)
        assert tenants, "nothing admitted; topology misconfigured"

        net, vm_ids = build_network_from_controller(controller)
        metrics = MetricsCollector()
        apps = []
        for request in tenants:
            app = EpochBurstApp(net, metrics, request.tenant_id,
                                vm_ids[request.tenant_id],
                                Fixed(request.guarantee.burst),
                                epoch=units.msec(2), rng=rng,
                                jitter=units.MICROS)
            app.start(phase=0.0)  # worst case: all tenants synchronized
            apps.append(app)
        net.sim.run(until=0.03)
        assert net.port_stats()["drops"] == 0
        for request in tenants:
            bound = request.guarantee.message_latency_bound(
                request.guarantee.burst)
            lats = metrics.latencies(request.tenant_id)
            assert lats and max(lats) <= bound


class TestBaselineContrast:
    def test_tcp_tail_suffers_where_silo_does_not(self):
        """Miniature Fig. 12: same workload, Silo vs plain TCP."""
        def run(scheme):
            topo = TreeTopology(n_pods=1, racks_per_pod=1,
                                servers_per_rack=3, slots_per_server=6,
                                link_rate=units.gbps(10))
            net = PacketNetwork(topo, scheme=scheme)
            metrics = MetricsCollector()
            g_a = NetworkGuarantee(bandwidth=units.mbps(250),
                                   burst=15 * units.KB,
                                   delay=units.msec(1),
                                   peak_rate=units.gbps(1))
            g_b = NetworkGuarantee(bandwidth=units.gbps(2),
                                   burst=1.5 * units.KB)
            paced = scheme == "silo"
            for i in range(6):
                net.add_vm(i, 1, i % 3,
                           guarantee=g_a if paced else None, paced=paced)
            for i in range(6, 12):
                net.add_vm(i, 2, i % 3,
                           guarantee=g_b if paced else None, paced=paced)
            rng = random.Random(2)
            app_a = EpochBurstApp(net, metrics, 1, list(range(6)),
                                  Fixed(15 * units.KB),
                                  epoch=2400 * units.MICROS, rng=rng)
            app_b = BulkApp(net, metrics, 2,
                            all_to_all_pairs(list(range(6, 12))),
                            chunk_size=units.MB)
            app_a.start()
            app_b.start()
            net.sim.run(until=0.05)
            lats = sorted(metrics.latencies(1))
            return lats[int(len(lats) * 0.99)]

        p99_silo = run("silo")
        p99_tcp = run("tcp")
        assert p99_tcp > 2 * p99_silo
