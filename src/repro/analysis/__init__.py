"""Statistics and report helpers shared by tests and benchmarks."""

from repro.analysis.stats import (
    percentile,
    cdf_points,
    mean,
    summarize,
)
from repro.analysis.capacity import CapacityReport, LevelUsage, capacity_report

__all__ = [
    "percentile",
    "cdf_points",
    "mean",
    "summarize",
    "CapacityReport",
    "LevelUsage",
    "capacity_report",
]
