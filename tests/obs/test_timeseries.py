"""TimeSeries reductions: interval buckets and reservoir sampling."""

import io

import pytest

from repro.obs.timeseries import TimeSeries


class TestConstruction:
    def test_needs_at_least_one_mode(self):
        with pytest.raises(ValueError):
            TimeSeries(name="x")

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeries(interval=0.0)


class TestBuckets:
    def test_bucket_aggregates(self):
        ts = TimeSeries(interval=1.0)
        ts.record(0.1, 10.0)
        ts.record(0.5, 30.0)
        ts.record(0.9, 20.0)
        ts.record(1.2, 5.0)
        buckets = ts.buckets()
        assert len(buckets) == 2
        first, second = buckets
        assert first.start == 0.0
        assert first.count == 3
        assert first.mean == pytest.approx(20.0)
        assert first.vmin == 10.0
        assert first.vmax == 30.0
        assert first.last == 20.0
        assert second.start == 1.0
        assert second.count == 1

    def test_empty_intervals_produce_no_buckets(self):
        """Sparse signals cost memory only when they change."""
        ts = TimeSeries(interval=1.0)
        ts.record(0.5, 1.0)
        ts.record(100.5, 2.0)
        starts = [b.start for b in ts.buckets()]
        assert starts == [0.0, 100.0]

    def test_memory_is_bounded_by_active_buckets(self):
        ts = TimeSeries(interval=1.0)
        for i in range(10000):
            ts.record(i * 0.001, float(i))  # all within 10 buckets
        assert len(ts.buckets()) == 10
        assert ts.count == 10000

    def test_stray_earlier_time_folds_into_open_bucket(self):
        ts = TimeSeries(interval=1.0)
        ts.record(5.5, 1.0)
        ts.record(5.4, 2.0)  # slightly out of order: no new bucket
        assert len(ts.buckets()) == 1
        assert ts.buckets()[0].count == 2


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        ts = TimeSeries(reservoir_size=100)
        for i in range(50):
            ts.record(float(i), float(i))
        assert ts.samples() == [(float(i), float(i)) for i in range(50)]

    def test_bounded_and_uniformish_over_capacity(self):
        ts = TimeSeries(reservoir_size=50)
        for i in range(5000):
            ts.record(float(i), float(i))
        samples = ts.samples()
        assert len(samples) == 50
        # A uniform sample spans the stream, not just its head or tail.
        times = [t for t, _ in samples]
        assert min(times) < 1000
        assert max(times) > 4000

    def test_seeded_runs_are_reproducible(self):
        def fill(seed):
            ts = TimeSeries(reservoir_size=10, seed=seed)
            for i in range(1000):
                ts.record(float(i), float(i) * 2)
            return ts.samples()

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)


class TestCsv:
    def test_bucket_mode_columns(self):
        ts = TimeSeries(interval=1.0)
        ts.record(0.5, 4.0)
        out = io.StringIO()
        ts.write_csv(out)
        lines = out.getvalue().splitlines()
        assert lines[0] == "time,count,mean,min,max,last"
        assert lines[1] == "0,1,4,4,4,4"

    def test_reservoir_mode_columns(self, tmp_path):
        ts = TimeSeries(reservoir_size=4)
        ts.record(1.0, 2.0)
        path = tmp_path / "series.csv"
        ts.write_csv(str(path))
        assert path.read_text().splitlines() == ["time,value", "1,2"]
