"""Seeded closed-loop load generator for the admission service.

Drives an :class:`~repro.service.server.AdmissionService` with the
section 6.3 tenant mix on a virtual clock: tenant arrivals (Poisson,
from :class:`~repro.flowsim.workload.TenantWorkload`), departures when
admitted tenants' jobs complete, scheduled fault events, and
budget-aware retry with the service's own backoff hints.

Everything is pre-generated from the seed with **explicit tenant ids**
(arrival ordinal + 1), so a run is a pure function of
``(topology, seed, knobs)`` -- and a *restarted* run can resume the
same event stream: submissions carry a stable ``source`` index into the
pre-generated list, and on resume the generator skips every source the
write-ahead log already saw.

The ``on_tick`` hook is the chaos handle: the soak benchmark uses it to
``SIGKILL`` the process (or abandon the service object) at a seeded
random tick and assert the restarted books are bit-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.tenant import TenantRequest
from repro.flowsim.workload import TenantWorkload, WorkloadConfig
from repro.service.server import AdmissionService
from repro.service.wal import replay_records

__all__ = ["ClosedLoopLoadGen"]

#: ``source`` index namespaces (arrivals use the raw ordinal).
_FAULT_BASE = 1_000_000
_DEPART_BASE = 2_000_000


class ClosedLoopLoadGen:
    """Closed-loop driver: offered load reacts to service feedback.

    Args:
        service: the service to drive (already recovered).
        arrival_rate: tenant arrivals per virtual second.
        horizon: stop generating new arrivals after this virtual time;
            the run then drains pending work.
        seed: workload seed (arrivals, mixes, compute times).
        config: workload shape; defaults to the Table 3 mix.
        fault_events: optional list of
            :class:`~repro.faults.model.FaultEvent` to inject on
            schedule.
        tick_interval: virtual seconds between service ticks.
        retry_budget: how many times a bounced/shed admission is
            re-offered (with the service's retry-after backoff) before
            the client gives up.
    """

    def __init__(self, service: AdmissionService, arrival_rate: float,
                 horizon: float, seed: int = 0,
                 config: Optional[WorkloadConfig] = None,
                 fault_events: Optional[List] = None,
                 tick_interval: float = 0.05,
                 retry_budget: int = 2) -> None:
        self.service = service
        self.horizon = horizon
        self.tick_interval = tick_interval
        self.retry_budget = retry_budget
        workload = TenantWorkload(config or WorkloadConfig(),
                                  arrival_rate, seed=seed)
        #: ordinal -> (time, request, compute_time); explicit tenant id
        #: = ordinal + 1, so ids survive a restart.
        self.arrivals: List[Tuple[float, TenantRequest, float]] = []
        for i, arrival in enumerate(workload.arrivals(horizon)):
            request = dc_replace(arrival.request, tenant_id=i + 1,
                                 name=f"tenant-{i + 1}")
            self.arrivals.append((arrival.time, request,
                                  arrival.compute_time))
        self.fault_events = sorted(fault_events or [],
                                   key=lambda e: (e.time, e.target.spec,
                                                  e.action))
        self._compute_time = {i + 1: c
                              for i, (_, _, c) in
                              enumerate(self.arrivals)}
        #: (time, order, kind, payload) pending submissions.
        self._pending: List[tuple] = []
        self._order = 0
        self._departure_scheduled: set = set()
        self.gave_up = 0

    # -- schedule construction ----------------------------------------------

    def _push(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self._pending, (time, self._order, kind, payload))
        self._order += 1

    def _seen_sources(self) -> set:
        seen = set()
        for record in replay_records(self.service.wal.path):
            if record.get("t") == "enq" and "source" in record:
                seen.add(int(record["source"]))
        return seen

    def _build_schedule(self) -> None:
        """Queue every not-yet-submitted event (resume-aware)."""
        seen = self._seen_sources()
        for i, (time, request, _compute) in enumerate(self.arrivals):
            if i not in seen:
                self._push(time, "admit", (i, request, 0))
        for j, event in enumerate(self.fault_events):
            if _FAULT_BASE + j not in seen:
                self._push(event.time, "fault", (j, event))
        # Tenants admitted in a previous life whose departure is
        # already in the log must not depart twice; everything else
        # placed gets its departure rescheduled by the first
        # _schedule_departures pass (compute times are deterministic).
        for tenant_id in sorted(self.service.cluster.placements):
            if _DEPART_BASE + tenant_id in seen:
                self._departure_scheduled.add(tenant_id)

    # -- feedback ------------------------------------------------------------

    def _on_decision(self, item, outcome: str, now: float) -> None:
        if outcome not in ("shed", "expired"):
            return
        source, request = self._decision_source(item)
        if source is None:
            return
        if item.attempt >= self.retry_budget:
            self.gave_up += 1
            return
        retry_after = self.service.queue.retry_after(item.attempt + 1)
        self._push(now + retry_after, "admit",
                   (source, request, item.attempt + 1))

    @staticmethod
    def _decision_source(item):
        request = item.payload
        if isinstance(request, TenantRequest):
            return request.tenant_id - 1, request
        return None, None

    # -- the drive loop ------------------------------------------------------

    def run(self, on_tick: Optional[Callable[[int, float], bool]] = None,
            max_ticks: Optional[int] = None) -> Dict[str, object]:
        """Drive the service until the horizon's work has drained.

        ``on_tick(tick_index, now)`` runs after every service tick;
        returning ``False`` stops the loop (the chaos hook).  Returns a
        summary dict (metrics + final digest).
        """
        service = self.service
        service.on_decision = self._on_decision
        self._build_schedule()
        drain_deadline = self.horizon * 2.0 + 64 * self.tick_interval
        tick_index = 0
        now = 0.0
        try:
            while True:
                now = (tick_index + 1) * self.tick_interval
                self._submit_due(now)
                service.tick(now)
                self._schedule_departures(now)
                tick_index += 1
                if on_tick is not None and on_tick(tick_index,
                                                   now) is False:
                    break
                if max_ticks is not None and tick_index >= max_ticks:
                    break
                if (now >= self.horizon and not self._pending
                        and len(service.queue) == 0):
                    break
                if now >= drain_deadline:
                    break
        finally:
            service.on_decision = None
        return {
            "ticks": tick_index,
            "end_time": now,
            "gave_up": self.gave_up,
            "metrics": service.metrics.to_dict(service.queue),
            "digest": service.state_digest(),
        }

    def _submit_due(self, now: float) -> None:
        service = self.service
        while self._pending and self._pending[0][0] <= now:
            _time, _order, kind, payload = heapq.heappop(self._pending)
            if kind == "admit":
                source, request, attempt = payload
                status, retry_after = service.submit_admission(
                    request, now, attempt=attempt, source=source)
                if status == "rejected":
                    if attempt < self.retry_budget:
                        self._push(now + retry_after, "admit",
                                   (source, request, attempt + 1))
                    else:
                        self.gave_up += 1
            elif kind == "fault":
                index, event = payload
                service.submit_fault(event, now=now,
                                     source=_FAULT_BASE + index)
            else:
                tenant_id = payload
                service.submit_departure(
                    tenant_id, now, source=_DEPART_BASE + tenant_id)

    def _schedule_departures(self, now: float) -> None:
        """Admitted tenants leave when their (seeded) job completes."""
        for tenant_id in self.service.cluster.placements:
            if tenant_id in self._departure_scheduled:
                continue
            compute = self._compute_time.get(tenant_id)
            if compute is None:
                continue  # not one of ours (pre-seeded tenant)
            self._departure_scheduled.add(tenant_id)
            self._push(now + compute, "depart", tenant_id)
