"""Packet-level fault semantics at an output port."""

import pytest

from repro import units
from repro.faults import FaultSchedule, FaultTarget, FaultEvent
from repro.faults.inject import NetworkFaultInjector
from repro.phynet.engine import Simulator
from repro.phynet.packet import PRIORITY_GUARANTEED, Packet
from repro.phynet.port import OutputPort


def make_port(sim, capacity=units.gbps(10), delivered=None):
    return OutputPort(sim, "test", capacity, buffer_bytes=10 * units.KB,
                      prop_delay=0.0,
                      on_delivery=(delivered.append
                                   if delivered is not None else None))


def packet(size=1250.0):
    return Packet(src=0, dst=1, size=size, route=[],
                  priority=PRIORITY_GUARANTEED)


class TestPortFaults:
    def test_down_port_drops_arrivals_as_fault_not_congestion(self):
        sim = Simulator()
        port = make_port(sim)
        port.set_fault_factor(0.0)
        port.enqueue(packet())
        assert port.stats.fault_drops == 1
        assert port.stats.fault_dropped_bytes == 1250.0
        assert port.stats.drops == 0
        assert port.queued_bytes == 0.0

    def test_down_port_freezes_queue_until_repair(self):
        sim = Simulator()
        delivered = []
        port = make_port(sim, delivered=delivered)
        port.enqueue(packet())
        port.enqueue(packet())
        # First packet is on the wire; take the port down before it
        # finishes -- the second must stay queued, not transmit.
        port.set_fault_factor(0.0)
        sim.run(until=1.0)
        assert len(delivered) == 1
        assert port.queued_bytes == 1250.0
        # Repairing an idle port resumes draining without a new arrival.
        port.set_fault_factor(1.0)
        sim.run(until=2.0)
        assert len(delivered) == 2
        assert port.queued_bytes == 0.0

    def test_degraded_port_serializes_slower(self):
        def drain_time(factor):
            sim = Simulator()
            delivered = []
            port = make_port(sim, capacity=1250.0, delivered=delivered)
            port.set_fault_factor(factor)
            port.enqueue(packet(size=1250.0))
            sim.run()
            assert len(delivered) == 1
            return sim.now

        assert drain_time(1.0) == pytest.approx(1.0)
        assert drain_time(0.25) == pytest.approx(4.0)

    def test_factor_out_of_range_rejected(self):
        port = make_port(Simulator())
        with pytest.raises(ValueError):
            port.set_fault_factor(-0.1)
        with pytest.raises(ValueError):
            port.set_fault_factor(1.5)

    def test_fault_factor_property_tracks_state(self):
        port = make_port(Simulator())
        assert port.fault_factor == 1.0 and not port.is_down
        port.set_fault_factor(0.5)
        assert port.fault_factor == 0.5 and not port.is_down
        port.set_fault_factor(0.0)
        assert port.fault_factor == 0.0 and port.is_down


class TestNetworkFaultInjector:
    def test_injector_drives_ports_and_counts_drops(self):
        from repro.core.guarantees import NetworkGuarantee
        from repro.core.silo import SiloController
        from repro.core.tenant import TenantClass, TenantRequest
        from repro.phynet.network import PacketNetwork
        from repro.topology import TreeTopology

        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=2,
                            slots_per_server=4, link_rate=units.gbps(10),
                            oversubscription=5.0,
                            buffer_bytes=312 * units.KB)
        silo = SiloController(topo)
        net = PacketNetwork(topo, scheme="silo")
        request = TenantRequest(
            n_vms=6,
            guarantee=NetworkGuarantee(bandwidth=units.mbps(500),
                                       burst=15 * units.KB),
            tenant_class=TenantClass.CLASS_B)
        admitted = silo.admit(request)
        assert admitted is not None
        vms = []
        for i, server in enumerate(admitted.placement.vm_servers):
            net.add_vm(i, admitted.tenant_id, server,
                       guarantee=request.guarantee, paced=False)
            vms.append(i)
        # Take server 0's NIC uplink down for the middle of the run.
        target = FaultTarget("link", topo.nic_up(0).port_id)
        schedule = FaultSchedule.from_events([
            FaultEvent.down(0.5e-3, target),
            FaultEvent.up(1.5e-3, target),
        ])
        injector = NetworkFaultInjector(net, schedule)
        # A long transfer out of server 0 straddles the outage; segments
        # arriving at the dead uplink are fault-dropped (and later
        # recovered by the transport).
        from repro.phynet.metrics import MessageRecord
        src = next(v for v in vms
                   if admitted.placement.vm_servers[v] == 0)
        dst = next(v for v in vms
                   if admitted.placement.vm_servers[v] != 0)
        flow = net.transport(src, dst)
        flow.send_message(MessageRecord(
            tenant_id=admitted.tenant_id, src_vm=src, dst_vm=dst,
            size=2000 * units.KB, start=0.0))
        net.sim.run(until=5e-3)
        assert injector.applied == 2
        stats = net.port_stats()
        assert stats["fault_drops"] > 0
        assert not net.ports[target.index].is_down
