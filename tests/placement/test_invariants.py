"""Property-based placement invariants under random churn.

Whatever the request stream, Silo's manager must keep every port's
reservation within line rate and every backlog bound within the buffer,
and removals must exactly undo admissions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology


def build_manager():
    topo = TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    return SiloPlacementManager(topo)


request_params = st.tuples(
    st.integers(min_value=2, max_value=12),                 # n_vms
    st.floats(min_value=50, max_value=2000),                # Mbps
    st.floats(min_value=1.5, max_value=60),                 # burst KB
    st.sampled_from([None, 500e-6, 1e-3, 5e-3]),            # delay
)


def make_request(params):
    n_vms, mbps, burst_kb, delay = params
    peak = units.gbps(10) if delay is not None else None
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(mbps),
                                   burst=burst_kb * units.KB,
                                   delay=delay, peak_rate=peak),
        tenant_class=(TenantClass.CLASS_A if delay is not None
                      else TenantClass.CLASS_B))


@settings(max_examples=25, deadline=None)
@given(st.lists(request_params, min_size=1, max_size=15))
def test_constraints_hold_after_any_admission_sequence(param_list):
    manager = build_manager()
    for params in param_list:
        manager.place(make_request(params))
    for state in manager.states.values():
        assert state.bandwidth <= state.port.capacity + 1e-6
        assert state.backlog() <= state.port.buffer_bytes + 1e-3
        assert state.queue_bound() <= state.port.queue_capacity + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.lists(request_params, min_size=1, max_size=12),
       st.randoms(use_true_random=False))
def test_removal_exactly_undoes_admission(param_list, rng):
    manager = build_manager()
    placed = []
    for params in param_list:
        request = make_request(params)
        if manager.place(request) is not None:
            placed.append(request.tenant_id)
    rng.shuffle(placed)
    for tenant_id in placed:
        manager.remove(tenant_id)
    assert manager.used_slots == 0
    for state in manager.states.values():
        assert abs(state.bandwidth) < 1e-6
        assert abs(state.burst) < 1e-3
        assert abs(state.peak_rate) < 1e-6


@settings(max_examples=15, deadline=None)
@given(st.lists(request_params, min_size=2, max_size=12),
       st.randoms(use_true_random=False))
def test_interleaved_churn_keeps_constraints(param_list, rng):
    manager = build_manager()
    live = []
    for params in param_list:
        request = make_request(params)
        if manager.place(request) is not None:
            live.append(request.tenant_id)
        if live and rng.random() < 0.4:
            victim = live.pop(rng.randrange(len(live)))
            manager.remove(victim)
        for state in manager.states.values():
            assert state.bandwidth <= state.port.capacity + 1e-6
            assert state.backlog() <= state.port.buffer_bytes + 1e-3


@settings(max_examples=20, deadline=None)
@given(st.lists(request_params, min_size=1, max_size=10))
def test_delay_guarantee_scope_respected(param_list):
    """Every admitted delay tenant's VM pairs must satisfy the path
    queue-capacity constraint (Silo's constraint 2)."""
    manager = build_manager()
    topo = manager.topology
    for params in param_list:
        request = make_request(params)
        placement = manager.place(request)
        if placement is None or not request.wants_delay:
            continue
        delay = request.guarantee.delay
        servers = sorted(set(placement.vm_servers))
        for a in servers:
            for b in servers:
                if a != b:
                    assert topo.path_queue_capacity(a, b) <= delay + 1e-12
