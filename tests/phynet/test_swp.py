"""SWP speculative transmission: duplication, dedup, first-copy-wins."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.phynet.engine import Simulator
from repro.phynet.metrics import MessageRecord, MetricsCollector
from repro.phynet.packet import (
    HEADER_BYTES,
    PRIORITY_BEST_EFFORT,
    PRIORITY_GUARANTEED,
)
from repro.phynet.transport.swp import DEFAULT_SPEC_THRESHOLD, SwpTransport


class StubNetwork:
    """Just enough network for a transport: captures transmitted packets."""

    def __init__(self):
        self.sim = Simulator()
        self.sent = []
        self.tracer = None

    def route(self, src_vm, dst_vm):
        return []

    def transmit(self, packet, src_vm):
        self.sent.append(packet)

    def sender_ready(self, src_vm, dst_vm):
        return True

    def notify_when_ready(self, src_vm, dst_vm, callback):
        raise AssertionError("stub never backpressures")


def send_copies(message_size):
    """One message's transmitted copies: (originals, speculative)."""
    net = StubNetwork()
    flow = SwpTransport(net, 0, 1, initial_cwnd=1000.0)
    record = MessageRecord(tenant_id=1, src_vm=0, dst_vm=1,
                           size=message_size, start=0.0)
    completions = []
    record.on_complete = completions.append
    flow.send_message(record)
    originals = [p for p in net.sent if not p.spec]
    specs = [p for p in net.sent if p.spec]
    return net, flow, record, completions, originals, specs


class TestDuplication:
    def test_small_message_duplicated_segment_for_segment(self):
        _net, flow, _rec, _done, originals, specs = send_copies(
            10 * units.KB)
        assert len(specs) == len(originals) == math.ceil(
            10 * units.KB / flow.mss)
        assert {p.payload[1] for p in specs} \
            == {p.payload[1] for p in originals}
        assert flow.spec_packets_sent == len(specs)
        assert flow.spec_bytes_sent == sum(p.size for p in specs)

    def test_copies_ride_the_best_effort_class_and_bypass_flag(self):
        _net, _flow, _rec, _done, originals, specs = send_copies(3000.0)
        for p in originals:
            assert p.priority == PRIORITY_GUARANTEED and not p.spec
        for p in specs:
            assert p.priority == PRIORITY_BEST_EFFORT and p.spec

    def test_large_messages_are_not_duplicated(self):
        _net, flow, _rec, _done, _originals, specs = send_copies(
            DEFAULT_SPEC_THRESHOLD + units.KB)
        assert specs == []
        assert flow.spec_packets_sent == 0


@st.composite
def arrival_schedules(draw):
    """A message size plus an arbitrary loss/reordering of its copies.

    For each segment at least one copy (original or speculative)
    survives; the surviving copies arrive in any interleaving.  This is
    exactly the space of receiver-observable histories for one message
    under duplication, reordering and partial loss.
    """
    message_size = draw(st.integers(min_value=1,
                                    max_value=DEFAULT_SPEC_THRESHOLD))
    n_segments = math.ceil(message_size / (units.MTU - HEADER_BYTES))
    survivors = []
    for seq in range(n_segments):
        fate = draw(st.sampled_from(
            ["original", "spec", "both"]))
        if fate in ("original", "both"):
            survivors.append((seq, False))
        if fate in ("spec", "both"):
            survivors.append((seq, True))
    order = draw(st.permutations(survivors))
    return message_size, order


class TestExactlyOnceDelivery:
    @settings(max_examples=200, deadline=None)
    @given(arrival_schedules())
    def test_any_arrival_order_delivers_exactly_once(self, schedule):
        message_size, order = schedule
        net, flow, record, completions, originals, specs = send_copies(
            message_size)
        by_key = {(p.payload[1], p.spec): p for p in originals + specs}
        for key in order:
            flow.on_data(by_key[key])
        # The application saw the message exactly once, with every
        # payload byte counted once no matter which copies arrived.
        assert len(completions) == 1
        assert record.completed
        assert flow.delivered_bytes == pytest.approx(message_size)
        # Dedup accounting: every surviving copy beyond the first of
        # its segment was recognized as a duplicate.
        n_segments = math.ceil(message_size / flow.mss)
        assert flow.duplicate_deliveries == len(order) - n_segments
        assert flow.spec_wins <= sum(1 for _seq, spec in order if spec)


class TestFirstCopyWins:
    def test_spec_copy_beats_paced_original_end_to_end(self):
        from repro.mechanisms import get_mechanism
        from repro.topology import TreeTopology
        topo = TreeTopology(n_pods=1, racks_per_pod=1,
                            servers_per_rack=2, slots_per_server=2,
                            link_rate=units.gbps(10))
        mech = get_mechanism("swp")
        net = mech.build_network(topo)
        guarantee = NetworkGuarantee(bandwidth=units.mbps(100),
                                     burst=15 * units.KB,
                                     delay=units.msec(1))
        mech.add_vm(net, 0, tenant_id=1, server=0, guarantee=guarantee)
        mech.add_vm(net, 1, tenant_id=1, server=1, guarantee=guarantee)
        flow = net.transport(0, 1, transport_class=mech.transport_class())
        metrics = MetricsCollector()
        record = metrics.new_message(1, 0, 1, size=15 * units.KB,
                                     start=0.0)
        flow.send_message(record)
        net.sim.run(until=0.05)
        assert record.completed
        # The original alone is paced at 12.5 MB/s (1.2 ms for 15 KB);
        # the unpaced speculative copy crosses the idle fabric in tens
        # of microseconds and must win the race.
        assert record.latency < 500 * units.MICROS
        assert flow.spec_wins >= 1
        counters = mech.counters(net)
        assert counters["spec_wins"] == flow.spec_wins
        assert counters["spec_packets_sent"] == flow.spec_packets_sent
