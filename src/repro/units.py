"""Unit conventions and conversion helpers.

Everything inside this package uses **bytes** for data and **seconds** for
time, so rates are **bytes per second**.  The paper (and networking at large)
quotes link speeds in bits per second and delays in micro- or milliseconds;
the helpers below keep conversions explicit and greppable at API boundaries.
"""

from __future__ import annotations

#: Bytes in one kilobyte / megabyte / gigabyte (decimal, as used for rates).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Binary sizes, used for buffer sizes quoted in KiB-style units.
KIB = 1_024
MIB = 1_048_576

#: Seconds in common sub-units.
MILLIS = 1e-3
MICROS = 1e-6
NANOS = 1e-9

#: Default maximum transmission unit (Ethernet payload + headers), bytes.
MTU = 1_500

#: Minimum Ethernet frame on the wire (used for void packets), bytes.
#: 64-byte frame + 12-byte inter-frame gap + 8-byte preamble = 84 bytes,
#: exactly the figure the paper uses for its 68 ns minimum spacing claim.
MIN_WIRE_FRAME = 84


def bits(n_bytes: float) -> float:
    """Convert bytes to bits."""
    return n_bytes * 8.0


def bytes_from_bits(n_bits: float) -> float:
    """Convert bits to bytes."""
    return n_bits / 8.0


def gbps(rate: float) -> float:
    """Convert a rate in gigabits per second to bytes per second."""
    return rate * 1e9 / 8.0


def mbps(rate: float) -> float:
    """Convert a rate in megabits per second to bytes per second."""
    return rate * 1e6 / 8.0


def kbps(rate: float) -> float:
    """Convert a rate in kilobits per second to bytes per second."""
    return rate * 1e3 / 8.0


def to_gbps(rate_bytes_per_s: float) -> float:
    """Convert a rate in bytes per second to gigabits per second."""
    return rate_bytes_per_s * 8.0 / 1e9


def to_mbps(rate_bytes_per_s: float) -> float:
    """Convert a rate in bytes per second to megabits per second."""
    return rate_bytes_per_s * 8.0 / 1e6


def usec(t: float) -> float:
    """Convert microseconds to seconds."""
    return t * MICROS


def msec(t: float) -> float:
    """Convert milliseconds to seconds."""
    return t * MILLIS


def to_usec(t_seconds: float) -> float:
    """Convert seconds to microseconds."""
    return t_seconds / MICROS


def to_msec(t_seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return t_seconds / MILLIS


def transmission_delay(size_bytes: float, rate_bytes_per_s: float) -> float:
    """Time to serialize ``size_bytes`` onto a link of the given rate."""
    if rate_bytes_per_s <= 0:
        raise ValueError("link rate must be positive")
    return size_bytes / rate_bytes_per_s
