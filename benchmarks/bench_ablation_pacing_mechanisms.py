"""Ablation: void-packet pacing vs timer-based software pacing.

The paper motivates void packets by the failure modes of the
alternatives: timer-driven software pacers quantize departures to the
timer resolution (tens of microseconds under a general-purpose OS), and
naive batching releases whole batches back-to-back.  This bench paces
the same stamped 2 Gbps stream three ways and compares per-packet
pacing error and the worst back-to-back run length the first-hop switch
sees.
"""

import pytest

from repro import units
from repro.pacer.hierarchy import PacerConfig, VMPacer
from repro.pacer.timer_pacer import TimerPacer
from repro.pacer.void_packets import VoidScheduler

from conftest import print_table, run_once

LINK = units.gbps(10)
RATE = units.gbps(2)
N_PACKETS = 2000

#: Timer resolutions representing a kernel hrtimer and a coarse software
#: timer (the paper cites inaccurate, unscalable software pacers).
TIMER_RESOLUTIONS = [5 * units.MICROS, 50 * units.MICROS]


def stamped_stream():
    pacer = VMPacer(PacerConfig(bandwidth=RATE, burst=units.MTU,
                                peak_rate=RATE))
    return [(pacer.stamp("d", units.MTU, 0.0), units.MTU)
            for _ in range(N_PACKETS)]


def _void_run_length(schedule):
    """Longest line-rate run in the void scheduler's data slots."""
    wire_gap = (units.MTU + 20) / LINK
    starts = [s.start_time for s in schedule.data_slots]
    longest, current = 1, 1
    for a, b in zip(starts, starts[1:]):
        if b - a <= wire_gap * 1.01:
            current += 1
            longest = max(longest, current)
        else:
            current = 1
    return longest


def compute():
    stamps = stamped_stream()
    rows = []
    stats = {}

    schedule = VoidScheduler(LINK).schedule(stamps)
    errors = [abs(s.pacing_error) for s in schedule.data_slots]
    stats["void"] = (max(errors), _void_run_length(schedule))
    rows.append(["void packets", f"{max(errors) * 1e9:.0f}",
                 f"{_void_run_length(schedule)}"])

    for resolution in TIMER_RESOLUTIONS:
        pacer = TimerPacer(LINK, resolution)
        label = f"timer @ {resolution * 1e6:.0f}us"
        stats[label] = (pacer.worst_error(stamps),
                        pacer.burst_run_length(stamps))
        rows.append([label, f"{stats[label][0] * 1e9:.0f}",
                     f"{stats[label][1]}"])
    return rows, stats


@pytest.mark.benchmark(group="ablation-pacing")
def test_ablation_pacing_mechanisms(benchmark):
    rows, stats = run_once(benchmark, compute)
    print_table(
        "Ablation: pacing mechanism accuracy at a 2 Gbps limit on 10 GbE",
        ["mechanism", "worst error (ns)", "worst back-to-back run"], rows)

    void_err, void_run = stats["void"]
    # Void packets pace within one minimum frame (~67 ns)...
    assert void_err <= units.MIN_WIRE_FRAME / LINK + 1e-12
    # ...and never emit line-rate bursts.
    assert void_run <= 1
    # Both timers are orders of magnitude coarser and produce bursts the
    # switch must buffer.
    for resolution in TIMER_RESOLUTIONS:
        err, run = stats[f"timer @ {resolution * 1e6:.0f}us"]
        assert err > 10 * void_err if void_err > 0 else err > 1e-6
        if resolution >= 50 * units.MICROS:
            assert run >= 2