"""DCTCP: ECN-fraction-proportional window reduction.

Switch ports mark packets when the instantaneous queue exceeds a threshold
``K``; the receiver echoes marks; the sender keeps an EWMA ``alpha`` of the
marked fraction per window and cuts ``cwnd`` by ``alpha / 2`` once per
window that saw marks (Alizadeh et al., SIGCOMM 2010).
"""

from __future__ import annotations

from repro.phynet.transport.base import Transport

#: EWMA gain ``g`` from the DCTCP paper.
DCTCP_GAIN = 1.0 / 16.0


class Dctcp(Transport):
    """DCTCP congestion control on top of the Reno machinery."""

    scheme = "dctcp"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.alpha = 0.0
        self._acked_total = 0
        self._acked_marked = 0
        self._window_end = 0

    def _on_ecn_feedback(self, ecn_echo: bool, ack_seq: int) -> None:
        advanced = max(ack_seq - self.snd_una, 0)
        self._acked_total += max(advanced, 1 if ecn_echo else 0)
        if ecn_echo:
            self._acked_marked += max(advanced, 1)
        if ack_seq >= self._window_end:
            # One RTT's worth of feedback is in: update alpha, react.
            if self._acked_total > 0:
                fraction = self._acked_marked / self._acked_total
                self.alpha = ((1.0 - DCTCP_GAIN) * self.alpha
                              + DCTCP_GAIN * fraction)
                if self._acked_marked > 0:
                    self.cwnd = max(1.0,
                                    self.cwnd * (1.0 - self.alpha / 2.0))
                    self.ssthresh = max(self.cwnd, 2.0)
            self._acked_total = 0
            self._acked_marked = 0
            # The next observation window ends at the highest segment
            # actually transmitted (not merely queued by the app).
            self._window_end = self.highest_sent + 1
