"""Fig. 13: fraction of class-A tenants whose messages suffer RTOs.

The paper plots, per scheme, a CDF over class-A tenants of the share of
their messages that hit at least one retransmission timeout.  With TCP
~21% of tenants have more than 1% of messages timing out; HULL ~14%;
Silo none at all (admitted bursts fit every buffer, so nothing is ever
dropped).
"""

import pytest

from conftest import CAMPAIGN_SCHEMES, print_table, run_once


def collect(campaign):
    table = {}
    for scheme in CAMPAIGN_SCHEMES:
        result = campaign[scheme]
        fractions = [result.rto_fractions[t]
                     for t in result.class_a_tenants]
        table[scheme] = fractions
    return table


@pytest.mark.benchmark(group="fig13")
def test_fig13_rto_cdf(benchmark, fig12_campaign):
    table = run_once(benchmark, lambda: collect(fig12_campaign))

    rows = []
    for scheme in CAMPAIGN_SCHEMES:
        fractions = table[scheme]
        worst = max(fractions)
        over_1pct = sum(1 for f in fractions if f > 0.01)
        rows.append([
            scheme,
            f"{100 * worst:.2f}%",
            f"{over_1pct}/{len(fractions)}",
        ])
    print_table(
        "Fig. 13: class-A tenants with messages hitting RTOs",
        ["scheme", "worst tenant's RTO msg share",
         "tenants with >1% RTO msgs"], rows)

    # Silo: zero RTOs for every tenant.
    assert all(f == 0.0 for f in table["silo"])
    # The unmanaged baselines each leave some tenant suffering timeouts.
    assert any(f > 0.0 for f in table["tcp"])
