"""Write your own campaign: a custom sweep over admission policies.

Runnable companion to ``docs/CAMPAIGNS.md``.  It defines a scenario the
library has never heard of -- how many of a batch of random tenant
requests each placement policy packs onto a small oversubscribed tree
-- registers it, sweeps it over a policy x link-rate grid with two
seeds, and then demonstrates the runner's two guarantees:

* an N-worker run merges **byte-identically** to the serial run;
* a run killed mid-campaign resumes to the same bytes, re-executing
  only the missing cells.

Run it::

    python examples/campaign_sweep.py

Everything is written under a fresh temporary directory that is printed
(and kept) so you can poke at the checkpoints and manifests afterwards.
"""

import filecmp
import json
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import units
from repro.campaign.registry import scenario
from repro.campaign.runner import run_campaign
from repro.campaign.spec import SweepSpec
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import (LocalityPlacementManager,
                             OktopusPlacementManager,
                             SiloPlacementManager)
from repro.topology import TreeTopology

MANAGERS = {
    "locality": LocalityPlacementManager,
    "oktopus": OktopusPlacementManager,
    "silo": SiloPlacementManager,
}


@scenario("example_packing_frontier")
def packing_frontier_cell(policy, link_gbps, n_requests, seed,
                          artifact_dir=None):
    """One cell: offer ``n_requests`` random tenants to one policy.

    Returns the admitted fraction and the slot occupancy it reached --
    a miniature of the paper's section 6.3 question (how much admission
    headroom does guaranteeing latency cost?) small enough to run in
    milliseconds.
    """
    rng = random.Random(seed)
    topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4,
                        link_rate=units.gbps(link_gbps),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    manager = MANAGERS[policy](topo)
    admitted = vms_placed = 0
    rows = []
    for index in range(n_requests):
        n_vms = rng.randint(2, 6)
        if rng.random() < 0.5:  # latency-sensitive (class A)
            guarantee = NetworkGuarantee(
                bandwidth=units.gbps(0.25), burst=15 * units.KB,
                delay=units.msec(1), peak_rate=units.gbps(1))
            tenant_class = TenantClass.CLASS_A
        else:  # bandwidth-hungry (class B)
            guarantee = NetworkGuarantee(
                bandwidth=units.gbps(0.5), burst=1.5 * units.KB)
            tenant_class = TenantClass.CLASS_B
        placement = manager.place(TenantRequest(
            n_vms=n_vms, guarantee=guarantee, tenant_class=tenant_class))
        if placement is not None:
            admitted += 1
            vms_placed += n_vms
        rows.append((index, n_vms, tenant_class.name,
                     placement is not None))
    if artifact_dir is not None:
        path = Path(artifact_dir) / "admissions.csv"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("request,n_vms,tenant_class,admitted\n")
            for row in rows:
                handle.write(",".join(str(cell) for cell in row) + "\n")
    return {"admitted": admitted / n_requests,
            "occupancy": vms_placed / topo.n_slots}


def build_spec():
    """Policy x link-rate grid, two seeds, 12 cells."""
    return SweepSpec(
        name="packing-frontier",
        scenario="example_packing_frontier",
        grid={"policy": sorted(MANAGERS),
              "link_gbps": [1.0, 10.0]},
        seeds=(1, 2),
        fixed={"n_requests": 40},
        module_paths=(str(Path(__file__).resolve()),))


def identical(a, b):
    """Whether two campaign dirs merged to byte-identical outputs."""
    return all(filecmp.cmp(a / name, b / name, shallow=False)
               for name in ("manifest.json", "merged.json"))


def main():
    """Serial vs parallel vs crash-and-resume, all byte-compared."""
    spec = build_spec()
    root = Path(tempfile.mkdtemp(prefix="campaign-sweep-"))
    print(f"campaign outputs under {root}\n")

    run_campaign(spec, out=root / "serial", workers=0)
    run_campaign(spec, out=root / "parallel", workers=2)
    flag = "byte-identical" if identical(root / "serial",
                                         root / "parallel") else "DIFFER"
    print(f"serial vs 2 workers: {flag}")

    # Simulate a crash: stop after 5 cells (checkpoints survive, no
    # manifest is written), then resume to completion.
    crashed = run_campaign(spec, out=root / "resumed", workers=2,
                           max_cells=5)
    print(f"killed after {len(crashed.records)}/{len(spec)} cells; "
          f"resuming...")
    resumed = run_campaign(spec, out=root / "resumed", workers=2,
                           resume=True)
    flag = ("byte-identical" if identical(root / "serial",
                                          root / "resumed") else "DIFFER")
    print(f"resumed vs uninterrupted: {flag} "
          f"(re-executed {resumed.executed} cells)\n")

    print("admitted fraction / slot occupancy by policy:")
    print(f"{'policy':10s} {'link':>6s} {'admitted':>9s} "
          f"{'occupancy':>10s}")
    merged = json.loads((root / "serial" / "merged.json").read_text())
    for cell in merged["cells"]:
        if cell["seed"] != spec.seeds[0]:
            continue  # one seed is enough for the table
        params, result = cell["params"], cell["result"]
        print(f"{params['policy']:10s} {params['link_gbps']:5.0f}G "
              f"{result['admitted']:9.2f} {result['occupancy']:10.2f}")


if __name__ == "__main__":
    main()
