"""Sharded cluster state: mirrors, xpod fallback, fault fan-out."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.faults.model import FaultEvent, FaultTarget
from repro.service import AGG, ShardedCluster
from repro.topology import TreeTopology

POD_SERVERS = 2 * 3  # racks_per_pod * servers_per_rack


def build_cluster(**kwargs):
    topo = TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    return ShardedCluster(topo, **kwargs)


def guaranteed(tenant_id, n_vms=2, mbps=100.0):
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(mbps),
                                   burst=10 * units.KB, delay=None,
                                   peak_rate=None),
        tenant_class=TenantClass.CLASS_B,
        name=f"t{tenant_id}", tenant_id=tenant_id)


def best_effort(tenant_id, n_vms):
    return TenantRequest(n_vms=n_vms, guarantee=None,
                         tenant_class=TenantClass.BEST_EFFORT,
                         name=f"be{tenant_id}", tenant_id=tenant_id)


def down(target_spec, time=1.0):
    return FaultEvent.down(time=time,
                           target=FaultTarget.parse(target_spec))


def up(target_spec, time=2.0):
    return FaultEvent.up(time=time,
                         target=FaultTarget.parse(target_spec))


def assert_mirrors_consistent(cluster):
    """Every shard tenant is mirrored in calc on the same global
    servers, and every calc cordon matches a shard-local one."""
    for tenant_id, owner in cluster.owner.items():
        assert tenant_id in cluster.calc.placements
        if owner == AGG:
            continue
        shard = cluster.shards[owner]
        local = sorted(shard.placements[tenant_id].vm_servers)
        mirrored = sorted(cluster.calc.placements[tenant_id].vm_servers)
        assert [cluster._to_global(owner, s) for s in local] == mirrored
    calc_cordons = set(cluster.calc._cordoned)
    shard_cordons = set()
    for pod, shard in enumerate(cluster.shards):
        for local_server in shard._cordoned:
            shard_cordons.add(cluster._to_global(pod, local_server))
    assert calc_cordons == shard_cordons


class TestPlacement:
    def test_shard_tenant_is_mirrored_into_calc(self):
        cluster = build_cluster()
        placement = cluster.place(guaranteed(1), now=0.0)
        assert placement is not None
        owner = cluster.owner[1]
        assert owner in (0, 1)
        assert 1 in cluster.shards[owner].placements
        assert_mirrors_consistent(cluster)

    def test_cluster_scope_tenant_falls_back_to_aggregator(self):
        cluster = build_cluster()
        # Bigger than one pod's 24 slots: only cluster scope can hold it.
        placement = cluster.place(best_effort(1, n_vms=30), now=0.0)
        assert placement is not None
        assert cluster.owner[1] == AGG
        # Slots-only placeholders land in every touched shard (a
        # best-effort tenant reserves no port capacity, so the per-pod
        # reservation lists are empty but the pods are recorded).
        touched = {cluster._to_local(s)[0] for s in placement.vm_servers}
        assert touched == {0, 1}
        for pod in touched:
            assert 1 in cluster.shards[pod].placements
            assert pod in cluster._xpod[1]

    def test_depart_releases_every_mirror(self):
        cluster = build_cluster()
        cluster.place(guaranteed(1), now=0.0)
        cluster.place(best_effort(2, n_vms=30), now=0.0)
        cluster.depart(1, now=1.0)
        cluster.depart(2, now=1.0)
        assert cluster.owner == {}
        assert cluster._xpod == {}
        assert cluster.calc.placements == {}
        for shard in cluster.shards:
            assert shard.placements == {}
        assert cluster.total_free == build_cluster().total_free

    def test_duplicate_tenant_id_is_rejected(self):
        cluster = build_cluster()
        cluster.place(guaranteed(1), now=0.0)
        with pytest.raises(ValueError, match="already known"):
            cluster.place(guaranteed(1), now=0.0)

    def test_depart_unknown_tenant_raises(self):
        cluster = build_cluster()
        with pytest.raises(KeyError):
            cluster.depart(99)

    def test_adopt_rejects_servers_outside_owning_pod(self):
        cluster = build_cluster()
        with pytest.raises(ValueError, match="outside owning pod"):
            cluster.adopt(guaranteed(1), owner=0,
                          vm_servers=[POD_SERVERS])  # pod 1's server

    def test_adopt_reproduces_a_place_bit_identically(self):
        cluster = build_cluster()
        placement = cluster.place(guaranteed(1), now=0.0)
        owner = cluster.owner[1]
        replayed = build_cluster()
        replayed.adopt(guaranteed(1), owner=owner,
                       vm_servers=list(placement.vm_servers))
        assert replayed.state_digest() == cluster.state_digest()


class TestFaultFanOut:
    def test_server_fault_reaches_the_owning_shard(self):
        cluster = build_cluster()
        cluster.place(guaranteed(1), now=0.0)
        owner = cluster.owner[1]
        victim = cluster._to_global(
            owner, cluster.shards[owner].placements[1].vm_servers[0])
        cluster.apply_fault(down(f"server:{victim}"))
        pod, local = cluster._to_local(victim)
        assert local in cluster.controllers[pod].health.down_servers
        assert_mirrors_consistent(cluster)

    def test_repair_replaces_and_keeps_mirrors_consistent(self):
        cluster = build_cluster()
        for tid in range(1, 7):
            assert cluster.place(guaranteed(tid, n_vms=4),
                                 now=0.0) is not None
        cluster.apply_fault(down("server:0", time=1.0))
        assert_mirrors_consistent(cluster)
        outcomes = cluster.apply_fault(up("server:0", time=2.0))
        assert_mirrors_consistent(cluster)
        # The repair event reports on at least the affected tenants.
        assert outcomes or cluster.recovery_report().rows

    def test_shard_cordon_engages_at_the_down_threshold(self):
        cluster = build_cluster(shard_down_threshold=0.5)
        for server in range(3):  # 3 of pod 0's 6 servers
            cluster.apply_fault(down(f"server:{server}",
                                     time=float(server)))
        assert cluster.cordoned_shards == {0}
        # Placement routes around the cordoned shard.
        placement = cluster.place(guaranteed(1), now=5.0)
        assert placement is not None
        assert cluster.owner[1] == 1
        assert_mirrors_consistent(cluster)

    def test_shard_cordon_lifts_when_enough_servers_return(self):
        cluster = build_cluster(shard_down_threshold=0.5)
        for server in range(3):
            cluster.apply_fault(down(f"server:{server}",
                                     time=float(server)))
        cluster.apply_fault(up("server:0", time=5.0))
        assert cluster.cordoned_shards == set()
        # Still-down servers stay individually fenced.
        assert 1 in cluster.controllers[0].health.down_servers
        assert_mirrors_consistent(cluster)

    def test_agg_only_targets_do_not_fan_out(self):
        cluster = build_cluster()
        events = cluster._split_event(down("switch:core:0"))
        assert events == []
        # The aggregator still processes the global event.
        cluster.apply_fault(down("switch:core:0"))
        assert cluster.cordoned_shards == set()
