"""Fault injection in the fluid cluster simulation."""

import pytest

from repro import units
from repro.faults import FaultEvent, FaultSchedule, FaultTarget
from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology


def build_topology():
    return TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=2.5,
                        buffer_bytes=312 * units.KB)


def fast_config():
    """Short jobs so plenty finish inside a few simulated seconds."""
    return WorkloadConfig(mean_compute_time=0.3,
                          a_flow_bytes=1 * units.MB,
                          b_flow_bytes=5 * units.MB,
                          mean_vms=6.0, max_vms=8)


def run_sim(faults, seed=11, horizon=10.0, sharing="reserved"):
    topo = build_topology()
    manager = SiloPlacementManager(topo)
    workload = TenantWorkload.for_occupancy(
        fast_config(), 0.6, topo.n_slots, seed=seed)
    sim = ClusterSim(manager, sharing=sharing, faults=faults)
    stats = sim.run(workload, until=horizon)
    return sim, stats


class TestEmptySchedule:
    def test_empty_schedule_is_byte_identical_to_no_faults(self):
        def fingerprint(faults):
            sim, stats = run_sim(faults)
            return (stats.finished_jobs, stats.carried_bytes,
                    stats.network_utilization, stats.mean_occupancy,
                    stats.evicted_jobs, stats.rerouted_jobs)

        assert fingerprint(None) == fingerprint(FaultSchedule(()))

    def test_no_controller_without_faults(self):
        sim, _stats = run_sim(None)
        assert sim.controller is None


class TestFaultRuns:
    def test_poisson_faults_complete_without_stalls(self):
        topo = build_topology()
        faults = FaultSchedule.poisson(topo, mtbf=1.0, mttr=0.5,
                                       horizon=10.0, seed=2)
        assert not faults.is_empty
        sim, stats = run_sim(faults)
        assert stats.finished_jobs > 0
        # The controller attached in no-resurrect mode.
        assert sim.controller is not None
        assert not sim.controller.retry_evicted

    def test_fault_events_reach_the_trace_stream(self):
        from repro.obs import RingBufferSink

        topo = build_topology()
        manager = SiloPlacementManager(topo)
        faults = FaultSchedule.poisson(topo, mtbf=1.0, mttr=0.5,
                                       horizon=5.0, seed=2)
        sink = RingBufferSink()
        workload = TenantWorkload.for_occupancy(
            fast_config(), 0.6, topo.n_slots, seed=11)
        sim = ClusterSim(manager, sharing="reserved", tracer=sink,
                         faults=faults)
        sim.run(workload, until=5.0)
        kinds = {e.kind for e in sink.events}
        assert "fault.inject" in kinds

    def test_server_crash_kills_unplaceable_jobs(self):
        # A cluster exactly big enough for one spanning job: crashing a
        # server mid-run evicts it (no capacity to re-place).
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=1,
                            slots_per_server=4, link_rate=units.gbps(10),
                            oversubscription=2.5,
                            buffer_bytes=312 * units.KB)
        manager = SiloPlacementManager(topo)
        config = WorkloadConfig(mean_vms=8, max_vms=8, min_vms=8,
                                mean_compute_time=100.0)
        workload = TenantWorkload(config, arrival_rate=100.0, seed=1)
        faults = FaultSchedule.from_events(
            [FaultEvent.down(0.5, FaultTarget("server", 0))])
        sim = ClusterSim(manager, sharing="reserved", faults=faults)
        stats = sim.run(workload, until=2.0)
        assert stats.evicted_jobs >= 1
        assert sim.controller.health.down_servers == {0}

    def test_link_repair_restores_capacity(self):
        topo = build_topology()
        port_id = topo.tor_up(0).port_id
        faults = FaultSchedule.from_events([
            FaultEvent.down(1.0, FaultTarget("link", port_id)),
            FaultEvent.up(2.0, FaultTarget("link", port_id)),
        ])
        sim, stats = run_sim(faults, horizon=5.0)
        assert sim._link_capacity[port_id] == sim._base_capacity[port_id]
        assert not sim._down_ports
        assert stats.finished_jobs > 0

    def test_maxmin_sharing_survives_faults_too(self):
        topo = build_topology()
        faults = FaultSchedule.poisson(topo, mtbf=1.0, mttr=0.5,
                                       horizon=8.0, seed=5)
        sim, stats = run_sim(faults, sharing="maxmin", horizon=8.0)
        assert stats.finished_jobs > 0


class TestDeterminism:
    def test_same_seed_same_faults_same_outcome(self):
        topo = build_topology()
        faults = FaultSchedule.poisson(topo, mtbf=0.8, mttr=0.4,
                                       horizon=8.0, seed=3)

        def fingerprint():
            sim, stats = run_sim(faults, horizon=8.0)
            return (stats.finished_jobs, stats.carried_bytes,
                    stats.evicted_jobs, stats.rerouted_jobs,
                    stats.network_utilization)

        assert fingerprint() == fingerprint()
