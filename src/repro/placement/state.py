"""Per-port reservation state used by admission control.

Each tenant crossing a port contributes a dual-rate arrival curve.  Summing
the exact curves of hundreds of tenants would grow without bound, so the
port state keeps four running totals -- sustained bandwidth, burst bytes,
peak (burst-drain) rate and the per-sender packet slack -- and rebuilds a
*conservative* aggregate curve from them:

    sum_i min(f_i, g_i)  <=  min(sum_i f_i, sum_i g_i)

i.e. the rebuilt curve over-estimates arrivals, so any placement it admits
is also admitted by the exact analysis.  This keeps admission O(1) per port
regardless of tenant count, which is what lets the placement manager handle
the paper's 100K-host scalability target (section 5).

Two equivalent evaluation paths exist for the rebuilt curve's bounds:

* the **fast path** (default) evaluates the dual-rate backlog/delay in
  closed form (:mod:`repro.netcalc.fastbounds`) without allocating a
  :class:`~repro.netcalc.curves.Curve` -- this is what admission probes
  use, since millions of them run per placement campaign;
* the **reference path** (``*_reference`` methods) rebuilds the Curve and
  runs the generic network-calculus bounds; it is kept as a cross-check
  oracle and the two are asserted bit-identical by the property tests and
  ``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro import units
from repro.netcalc.bounds import backlog_bound, delay_bound
from repro.netcalc.curves import Curve
from repro.netcalc.fastbounds import (_EPS, _REL_TOL, dual_rate_backlog,
                                      dual_rate_delay)
from repro.netcalc.service import RateLatencyService
from repro.topology.switch import Port

_MTU = units.MTU


@dataclass(frozen=True)
class Contribution:
    """One tenant's arrival-curve contribution at one port.

    Attributes:
        bandwidth: sustained hose bandwidth crossing the port (bytes/s).
        burst: total burst bytes, already inflated for upstream bunching.
        peak_rate: rate at which the burst can drain into the port, after
            capping at the senders' physical link capacities.
        packet_slack: one packet per sender (even paced sources emit whole
            packets).
    """

    bandwidth: float
    burst: float
    peak_rate: float
    packet_slack: float

    def __post_init__(self) -> None:
        if self.bandwidth < 0 or self.burst < 0 or self.packet_slack < 0:
            raise ValueError("contribution terms must be >= 0")
        if self.peak_rate < self.bandwidth:
            raise ValueError("peak rate must be >= sustained bandwidth")


class PortState:
    """Running reservation totals for one port."""

    __slots__ = ("port", "bandwidth", "burst", "peak_rate", "packet_slack",
                 "_service", "_capacity", "_buffer_limit")

    def __init__(self, port: Port):
        self.port = port
        self.bandwidth = 0.0
        self.burst = 0.0
        self.peak_rate = 0.0
        self.packet_slack = 0.0
        self._service = RateLatencyService(rate=port.capacity)
        # Hoisted constants for the admission fast path.  The buffer limit
        # carries *relative* slack: at buffer magnitudes (hundreds of KB)
        # an absolute epsilon is either below one ulp (no effect) or an
        # arbitrary absolute tolerance; a relative one tracks float drift
        # from the add/remove reservation cycles at any magnitude.
        self._capacity = port.capacity
        self._buffer_limit = port.buffer_bytes * (1.0 + _REL_TOL)

    # -- mutation ------------------------------------------------------------

    def add(self, contribution: Contribution) -> None:
        """Add a tenant contribution to the port's totals."""
        self.bandwidth += contribution.bandwidth
        self.burst += contribution.burst
        self.peak_rate += contribution.peak_rate
        self.packet_slack += contribution.packet_slack

    def remove(self, contribution: Contribution) -> None:
        """Remove a previously added contribution."""
        self.bandwidth -= contribution.bandwidth
        self.burst -= contribution.burst
        self.peak_rate -= contribution.peak_rate
        self.packet_slack -= contribution.packet_slack
        # Guard against floating-point drift after many add/remove cycles.
        self.bandwidth = max(self.bandwidth, 0.0)
        self.burst = max(self.burst, 0.0)
        self.peak_rate = max(self.peak_rate, 0.0)
        self.packet_slack = max(self.packet_slack, 0.0)

    def reset_totals(self, contributions: Iterable[Contribution]) -> None:
        """Rebuild the running totals by folding ``contributions`` in order.

        Incremental subtraction (:meth:`remove`) can leave ~1-ulp residue
        per cycle; re-summing the surviving contributions in their
        original commit order reproduces *bit-for-bit* the totals a
        freshly built port holding the same reservations would have, so
        arbitrarily long place/release sequences never accumulate drift.
        Release runs off the admission hot path, so the O(tenants at this
        port) fold is affordable.
        """
        bandwidth = 0.0
        burst = 0.0
        peak_rate = 0.0
        packet_slack = 0.0
        for contribution in contributions:
            bandwidth += contribution.bandwidth
            burst += contribution.burst
            peak_rate += contribution.peak_rate
            packet_slack += contribution.packet_slack
        self.bandwidth = bandwidth
        self.burst = burst
        self.peak_rate = peak_rate
        self.packet_slack = packet_slack

    # -- analysis --------------------------------------------------------------

    def _totals(self, extra: Optional[Contribution]):
        """The conditioned dual-rate totals the aggregate curve is built
        from (shared by the fast and reference paths)."""
        bandwidth = self.bandwidth
        burst = self.burst
        peak = self.peak_rate
        slack = self.packet_slack
        if extra is not None:
            bandwidth += extra.bandwidth
            burst += extra.burst
            peak += extra.peak_rate
            slack += extra.packet_slack
        if slack < units.MTU:
            slack = units.MTU
        if burst < slack:
            burst = slack
        if peak < bandwidth:
            peak = bandwidth
        return bandwidth, burst, peak, slack

    def aggregate_curve(self, extra: Optional[Contribution] = None) -> Curve:
        """Conservative aggregate arrival curve, optionally with a candidate.

        Returns the dual-rate curve built from the summed totals; see the
        module docstring for why this is a sound over-approximation.
        """
        bandwidth, burst, peak, slack = self._totals(extra)
        if peak <= bandwidth or burst <= slack:
            return Curve.affine(bandwidth, burst)
        return Curve.from_pieces([(peak, slack), (bandwidth, burst)])

    def queue_bound(self, extra: Optional[Contribution] = None) -> float:
        """Worst-case queuing delay (seconds) at this port."""
        bandwidth, burst, peak, slack = self._totals(extra)
        return dual_rate_delay(bandwidth, burst, peak, slack,
                               self._capacity)

    def backlog(self, extra: Optional[Contribution] = None) -> float:
        """Worst-case queued bytes at this port."""
        bandwidth, burst, peak, slack = self._totals(extra)
        return dual_rate_backlog(bandwidth, burst, peak, slack,
                                 self._capacity)

    def queue_bound_reference(self,
                              extra: Optional[Contribution] = None) -> float:
        """Curve-based oracle for :meth:`queue_bound` (cross-check only)."""
        return delay_bound(self.aggregate_curve(extra), self._service)

    def backlog_reference(self,
                          extra: Optional[Contribution] = None) -> float:
        """Curve-based oracle for :meth:`backlog` (cross-check only)."""
        return backlog_bound(self.aggregate_curve(extra), self._service)

    def admits(self, extra: Contribution) -> bool:
        """Silo's first constraint: queue bound within queue capacity.

        Checked in byte form (backlog <= buffer) which is equivalent to
        "queue bound <= queue capacity" for a line-rate server, plus queue
        stability (reserved bandwidth within line rate).

        This is the single hottest call in a placement campaign (every
        ``_server_ok`` probe lands here twice), so the ``_totals`` +
        :func:`dual_rate_backlog` pipeline is inlined with ``latency=0``
        folded through.  The arithmetic is operation-for-operation the
        same; ``admits_reference`` and the property tests keep it honest.
        """
        capacity = self._capacity
        bandwidth = self.bandwidth + extra.bandwidth
        if bandwidth > capacity:
            return False
        burst = self.burst + extra.burst
        peak = self.peak_rate + extra.peak_rate
        slack = self.packet_slack + extra.packet_slack
        if slack < _MTU:
            slack = _MTU
        if burst < slack:
            burst = slack
        if peak < bandwidth:
            peak = bandwidth
        limit = self._buffer_limit
        # Single affine piece (bandwidth, burst): it is stable (bandwidth
        # <= capacity was just checked) and its backlog at a zero-latency
        # server is exactly the burst.
        if peak <= bandwidth or burst <= slack:
            return burst <= limit
        if math.isclose(peak, bandwidth, rel_tol=_EPS, abs_tol=_EPS):
            # Equal-rate dedup keeps the (peak, slack) piece, whose rate
            # may exceed capacity by the rounding the dedup tolerated.
            if peak > capacity * (1.0 + _REL_TOL):
                return False
            return slack <= limit
        if burst <= slack + _EPS:
            return burst <= limit
        crossover = (burst - slack) / (peak - bandwidth)
        if crossover <= _EPS:
            return burst <= limit
        backlog = bandwidth * crossover + burst - capacity * crossover
        if slack > backlog:
            backlog = slack
        return backlog <= limit

    def admits_reference(self, extra: Contribution) -> bool:
        """Curve-based oracle for :meth:`admits` (cross-check only)."""
        if self.bandwidth + extra.bandwidth > self._capacity:
            return False
        return self.backlog_reference(extra) <= self._buffer_limit

    def admits_bandwidth(self, extra: Contribution) -> bool:
        """Oktopus' bandwidth-only admission check."""
        return self.bandwidth + extra.bandwidth <= self._capacity

    @property
    def residual_bandwidth(self) -> float:
        """Bandwidth capacity not yet reserved."""
        return max(self._capacity - self.bandwidth, 0.0)

    def snapshot(self) -> dict:
        """Flat dict of this port's reservation state and bounds.

        Used by the observability layer (admission audits, trace exports)
        to capture admission state alongside event streams.
        """
        return {
            "port": repr(self.port),
            "capacity": self._capacity,
            "bandwidth": self.bandwidth,
            "burst": self.burst,
            "peak_rate": self.peak_rate,
            "packet_slack": self.packet_slack,
            "backlog_bound": self.backlog(),
            "queue_bound": self.queue_bound(),
            "buffer_bytes": self.port.buffer_bytes,
        }

    @property
    def is_empty(self) -> bool:
        """No reservations at all: this port is interchangeable with any
        other empty port of the same shape (used to prune search)."""
        return (self.bandwidth == 0.0 and self.burst == 0.0
                and self.peak_rate == 0.0)

    def __repr__(self) -> str:
        return (f"PortState({self.port!r}: "
                f"bw={units.to_gbps(self.bandwidth):.2f}Gbps "
                f"burst={self.burst / 1e3:.0f}KB)")
