"""Random distributions used by the workload generators.

Each distribution is a small object with a ``sample(rng)`` method taking a
``random.Random`` so that every experiment controls its own seed and runs
are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Optional

#: Below this magnitude a generalized-Pareto shape parameter ``k`` is
#: treated as exactly zero and the exponential limit form is used; the
#: two branches agree to within float rounding well before this point.
_K_ZERO_EPS = 1e-12


class Distribution:
    """Interface: ``sample(rng) -> float``."""

    def sample(self, rng: random.Random) -> float:
        """Draw one value using ``rng``."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """The distribution's mean."""
        raise NotImplementedError


class Fixed(Distribution):
    """Always the same value."""

    def __init__(self, value: float):
        self.value = value

    def sample(self, rng: random.Random) -> float:
        """Draw one value using ``rng``."""
        return self.value

    @property
    def mean(self) -> float:
        """The distribution's mean."""
        return self.value


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if high < low:
            raise ValueError("high must be >= low")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        """Draw one value using ``rng``."""
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        """The distribution's mean."""
        return (self.low + self.high) / 2.0


class Exponential(Distribution):
    """Exponential with the given mean (Poisson inter-arrival times)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = mean

    def sample(self, rng: random.Random) -> float:
        """Draw one value using ``rng``."""
        return rng.expovariate(1.0 / self._mean)

    @property
    def mean(self) -> float:
        """The distribution's mean."""
        return self._mean


class GeneralizedPareto(Distribution):
    """Generalized Pareto, the distribution of the Facebook ETC trace.

    Parameterized by location ``theta``, scale ``sigma`` and shape ``k``
    (Atikoglu et al., SIGMETRICS 2012 use exactly this family for value
    sizes and inter-arrival gaps).  Sampling is by inverse transform:

        x = theta + sigma * ((1 - u)^(-k) - 1) / k        (k != 0)
        x = theta - sigma * ln(1 - u)                     (k == 0)

    An optional ``cap`` truncates the heavy tail (the paper's workload
    caps memcached values at ~1 KB).
    """

    def __init__(self, theta: float, sigma: float, k: float,
                 cap: Optional[float] = None):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.theta = theta
        self.sigma = sigma
        self.k = k
        self.cap = cap

    def sample(self, rng: random.Random) -> float:
        """Draw one value by inverse-CDF sampling using ``rng``."""
        u = rng.random()
        if abs(self.k) < _K_ZERO_EPS:
            value = self.theta - self.sigma * math.log(1.0 - u)
        else:
            value = (self.theta
                     + self.sigma * ((1.0 - u) ** (-self.k) - 1.0) / self.k)
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    @property
    def mean(self) -> float:
        """Mean of the *untruncated* distribution (k < 1 required)."""
        if self.k >= 1:
            return math.inf
        return self.theta + self.sigma / (1.0 - self.k)
