"""Reliable, message-oriented transport base (TCP Reno mechanics).

One :class:`Transport` instance handles one VM pair (one "flow" in the
paper's terminology); applications multiplex *messages* onto it, exactly as
cloud applications multiplex messages onto long-lived connections (the
paper's footnote 1).  The base class implements standard Reno: slow start,
congestion avoidance, fast retransmit on three duplicate ACKs, and
retransmission timeouts with exponential backoff.  DCTCP and HULL override
the ECN reaction.

Sequence numbers count segments, not bytes; segments are MSS-sized except
a message's last one, and the receiver delivers in order, completing a
message when its final segment is consumed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro import units
from repro.obs.events import FlowFinish
from repro.phynet.metrics import MessageRecord
from repro.phynet.packet import (
    ACK_BYTES,
    HEADER_BYTES,
    PRIORITY_GUARANTEED,
    Packet,
)

#: Default minimum / initial retransmission timeout.  Datacenter stacks run
#: with a reduced min-RTO; the paper's testbed default (200 ms) can be
#: restored per experiment.
DEFAULT_MIN_RTO = 10 * units.MILLIS
DEFAULT_INIT_CWND = 10.0
#: Event-time slop for deadline comparisons.  Simulation times sit in
#: the micro-to-millisecond range, so 1e-12 s is far below one ulp of
#: any deadline yet far above accumulated scheduling error.
_TIME_EPS = 1e-12


class Segment:
    """Sender-side bookkeeping for one MSS-or-smaller chunk."""

    __slots__ = ("seq", "size", "record", "is_last", "send_time",
                 "retransmitted")

    def __init__(self, seq: int, size: float, record: MessageRecord,
                 is_last: bool):
        self.seq = seq
        self.size = size
        self.record = record
        self.is_last = is_last
        self.send_time: Optional[float] = None
        self.retransmitted = False


class Transport:
    """One reliable unidirectional data flow between two VMs.

    The reverse direction carries only ACKs.  Use one instance per ordered
    VM pair; a bidirectional exchange (request/response) uses two.
    """

    #: Name used in benchmark tables.
    scheme = "tcp"

    def __init__(self, network: Any, src_vm: int, dst_vm: int,
                 mss: float = units.MTU - HEADER_BYTES,
                 min_rto: float = DEFAULT_MIN_RTO,
                 initial_cwnd: float = DEFAULT_INIT_CWND,
                 priority: int = PRIORITY_GUARANTEED):
        self.network = network
        self.sim = network.sim
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.mss = mss
        self.priority = priority

        # Sender state.
        self.cwnd = initial_cwnd
        self.initial_cwnd = initial_cwnd
        self.ssthresh = float("inf")
        self.next_seq = 0
        self.snd_una = 0
        self.dup_acks = 0
        self.send_queue: Deque[Segment] = deque()
        self.in_flight: Dict[int, Segment] = {}
        self.segments: Dict[int, Segment] = {}
        self.min_rto = min_rto
        self.rto = min_rto
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._rto_deadline: Optional[float] = None
        self._rto_pending = False
        self.rto_count = 0
        self._recovery_until = -1
        self.highest_sent = -1

        # Receiver state.
        self.rcv_next = 0
        self.ooo_buffer: Dict[int, Tuple[float, bool, MessageRecord]] = {}
        self.delivered_bytes = 0.0

    # ------------------------------------------------------------------ sender

    def send_message(self, record: MessageRecord) -> None:
        """Segment a message and start transmitting within the window."""
        remaining = record.size
        if remaining <= 0:
            raise ValueError("message size must be positive")
        while remaining > 0:
            size = min(self.mss, remaining)
            remaining -= size
            segment = Segment(self.next_seq, size, record,
                              is_last=(remaining <= 0))
            self.segments[self.next_seq] = segment
            self.send_queue.append(segment)
            self.next_seq += 1
        self._pump()

    def _pump(self) -> None:
        """Send new segments while the window and the shaper have room.

        The second condition is the hypervisor's send-completion
        backpressure: when the VM's shaper queue is full the guest stack
        pauses rather than overrunning it, and resumes when notified.
        """
        while self.send_queue and len(self.in_flight) < int(self.cwnd):
            if not self.network.sender_ready(self.src_vm, self.dst_vm):
                self.network.notify_when_ready(self.src_vm, self.dst_vm,
                                               self._pump)
                return
            segment = self.send_queue.popleft()
            self._transmit_segment(segment)

    def _transmit_segment(self, segment: Segment) -> None:
        segment.send_time = self.sim.now
        self.in_flight[segment.seq] = segment
        if segment.seq > self.highest_sent:
            self.highest_sent = segment.seq
        packet = Packet(
            src=self.src_vm, dst=self.dst_vm,
            size=segment.size + HEADER_BYTES,
            route=self.network.route(self.src_vm, self.dst_vm),
            flow=self, priority=self.priority,
            payload=("data", segment.seq, segment.is_last, segment.record))
        packet.sent_time = self.sim.now
        self.network.transmit(packet, self.src_vm)
        self._arm_rto()

    # --------------------------------------------------------------- receiver

    def on_data(self, packet: Packet) -> None:
        """Called by the network when a data packet reaches ``dst_vm``."""
        _kind, seq, is_last, record = packet.payload
        if seq >= self.rcv_next and seq not in self.ooo_buffer:
            self.ooo_buffer[seq] = (packet.size - HEADER_BYTES, is_last,
                                    record)
        # Deliver in order.
        while self.rcv_next in self.ooo_buffer:
            size, last, rec = self.ooo_buffer.pop(self.rcv_next)
            self.delivered_bytes += size
            self.rcv_next += 1
            if last and rec is not None and rec.finish is None:
                rec.finish = self.sim.now
                tracer = self.network.tracer
                if tracer is not None:
                    tracer.emit(FlowFinish(
                        time=rec.finish, tenant_id=rec.tenant_id,
                        src=rec.src_vm, dst=rec.dst_vm,
                        latency=rec.finish - rec.start, size=rec.size))
                if rec.on_complete is not None:
                    rec.on_complete(rec)
        self._send_ack(ecn_echo=packet.ecn)

    def _send_ack(self, ecn_echo: bool) -> None:
        ack = Packet(
            src=self.dst_vm, dst=self.src_vm, size=ACK_BYTES,
            route=self.network.route(self.dst_vm, self.src_vm),
            flow=self, priority=self.priority, is_control=True,
            payload=("ack", self.rcv_next, ecn_echo, None))
        self.network.transmit(ack, self.dst_vm)

    # ------------------------------------------------------------------- ACK path

    def on_ack(self, packet: Packet) -> None:
        """Called by the network when an ACK reaches the sender."""
        _kind, ack_seq, ecn_echo, _ = packet.payload
        self._on_ecn_feedback(ecn_echo, ack_seq)
        if ack_seq > self.snd_una:
            newly_acked = 0
            rtt_sample = None
            for seq in range(self.snd_una, ack_seq):
                segment = self.in_flight.pop(seq, None)
                if segment is not None:
                    newly_acked += 1
                    if not segment.retransmitted and segment.send_time is not None:
                        rtt_sample = self.sim.now - segment.send_time
                self.segments.pop(seq, None)
            self.snd_una = ack_seq
            self.dup_acks = 0
            if rtt_sample is not None:
                self._update_rtt(rtt_sample)
            self._on_new_ack(newly_acked)
            if self.snd_una < self._recovery_until:
                # NewReno: a partial ACK during recovery exposes the next
                # hole; retransmit it immediately instead of stalling for
                # three dupacks or a timeout per loss.
                hole = self.in_flight.get(self.snd_una)
                if hole is not None:
                    hole.retransmitted = True
                    self._retransmit(hole)
            if self.in_flight:
                self._arm_rto()
            else:
                self._cancel_rto()
            self._pump()
        elif self.in_flight:
            self.dup_acks += 1
            if self.dup_acks == 3:
                self._fast_retransmit()

    def _on_new_ack(self, newly_acked: int) -> None:
        """Reno window growth; subclasses may extend."""
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd
        self.rto = self._current_rto()

    def _on_ecn_feedback(self, ecn_echo: bool, ack_seq: int) -> None:
        """Reno ignores ECN; DCTCP overrides."""

    def _fast_retransmit(self) -> None:
        if self.snd_una >= self._recovery_until:
            self.ssthresh = max(len(self.in_flight) / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self._recovery_until = self.next_seq
        segment = self.in_flight.get(self.snd_una)
        if segment is not None:
            segment.retransmitted = True
            self._retransmit(segment)

    def _retransmit(self, segment: Segment) -> None:
        packet = Packet(
            src=self.src_vm, dst=self.dst_vm,
            size=segment.size + HEADER_BYTES,
            route=self.network.route(self.src_vm, self.dst_vm),
            flow=self, priority=self.priority,
            payload=("data", segment.seq, segment.is_last, segment.record))
        segment.send_time = self.sim.now
        self.network.transmit(packet, self.src_vm)
        self._arm_rto()

    # ----------------------------------------------------------------------- RTO

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = self._current_rto()

    def _current_rto(self) -> float:
        if self.srtt is None:
            return self.min_rto
        return max(self.min_rto, self.srtt + 4.0 * self.rttvar)

    def _arm_rto(self) -> None:
        """Push the retransmission deadline out; lazily (re)schedule.

        Keeping at most one pending timer event per flow (and extending it
        lazily when it fires early) keeps the event heap small even at
        millions of packets per second.
        """
        self._rto_deadline = self.sim.now + self.rto
        if not self._rto_pending:
            self._rto_pending = True
            self.sim.schedule(self.rto, self._rto_fire)

    def _cancel_rto(self) -> None:
        self._rto_deadline = None

    def _rto_fire(self) -> None:
        self._rto_pending = False
        if self._rto_deadline is None or not self.in_flight:
            return
        if self.sim.now < self._rto_deadline - _TIME_EPS:
            # The deadline moved (ACKs arrived); sleep out the remainder.
            self._rto_pending = True
            self.sim.schedule(self._rto_deadline - self.sim.now,
                              self._rto_fire)
            return
        self.rto_count += 1
        oldest = min(self.in_flight)
        segment = self.in_flight[oldest]
        segment.record.rto_events += 1
        segment.retransmitted = True
        self.ssthresh = max(len(self.in_flight) / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.rto = min(self.rto * 2.0, 2.0)
        self._recovery_until = self.next_seq
        self._retransmit(segment)

    # ------------------------------------------------------------------- drops

    def on_drop(self, packet: Packet) -> None:
        """A packet of this flow was dropped; recovery is ACK/RTO driven."""

    # -------------------------------------------------------------------- misc

    @property
    def outstanding_messages(self) -> int:
        """Messages with bytes still queued or in flight."""
        return len({s.record for s in self.in_flight.values()}
                   | {s.record for s in self.send_queue})

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.src_vm}->{self.dst_vm} "
                f"cwnd={self.cwnd:.1f} inflight={len(self.in_flight)})")
