"""Fig. 12: class-A message latency under six schemes.

The section 6.2 workload: class-A tenants (all-to-one 15 KB messages,
bandwidth + delay + burst guarantees) sharing an oversubscribed tree with
class-B tenants (all-to-all bulk).  Schemes: Silo, TCP, DCTCP, HULL,
Oktopus (bandwidth-only placement + rate limits, no bursting) and Okto+
(Oktopus placement with burst allowance).

Expected shape: Silo's 99th percentile is an order of magnitude below
DCTCP/HULL/TCP; Oktopus is worst at the median (no bursting); Okto+
fixes the median but keeps a bad tail (bursts its placement did not
budget for).
"""

import pytest

from repro import units
from repro.analysis import percentile

from conftest import CAMPAIGN_SCHEMES, print_table, run_once


def collect(campaign):
    table = {}
    for scheme in CAMPAIGN_SCHEMES:
        result = campaign[scheme]
        lats = []
        for tenant in result.class_a_tenants:
            lats.extend(result.metrics.latencies(tenant))
        table[scheme] = {
            "median": percentile(lats, 50),
            "p95": percentile(lats, 95),
            "p99": percentile(lats, 99),
            "n": len(lats),
            "drops": result.drops,
        }
    return table


@pytest.mark.benchmark(group="fig12")
def test_fig12_class_a_latency(benchmark, fig12_campaign):
    table = run_once(benchmark, lambda: collect(fig12_campaign))

    rows = []
    for scheme in CAMPAIGN_SCHEMES:
        stats = table[scheme]
        rows.append([
            scheme, f"{stats['n']}",
            f"{units.to_msec(stats['median']):.3f}",
            f"{units.to_msec(stats['p95']):.3f}",
            f"{units.to_msec(stats['p99']):.3f}",
            f"{stats['drops']}",
        ])
    print_table("Fig. 12: class-A message latency (ms)",
                ["scheme", "msgs", "median", "p95", "p99", "drops"],
                rows)

    silo = table["silo"]
    # Silo's tail beats every contended baseline by a wide margin.
    for scheme in ("tcp", "dctcp", "hull"):
        assert table[scheme]["p99"] >= 3 * silo["p99"], scheme
    # Oktopus (no bursting) is the worst at the median.
    assert table["okto"]["median"] >= 2 * silo["median"]
    assert table["okto"]["median"] == max(s["median"]
                                          for s in table.values())
    # Okto+ recovers the median but not the tail.
    assert table["okto+"]["median"] <= 0.5 * table["okto"]["median"]
    # Silo suffers no switch loss at all.
    assert silo["drops"] == 0
