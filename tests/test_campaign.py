"""The campaign runner: specs, merge reductions, determinism, resume.

The worker-pool tests run a deliberately cheap toy scenario (loaded via
``module_paths``, the same route example scripts use) so that the
byte-identity and crash/resume contracts are exercised end-to-end in a
few seconds; the real-figure sweeps get the same treatment in CI's
campaign smoke job and in ``benchmarks/bench_campaign.py``.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import (Cell, SweepSpec, derive_seed, get_scenario,
                            get_sweep, list_sweeps, merge_bucket_rows,
                            pool_values, pooled_stats, run_campaign,
                            scenario, sum_counters)

HELPER = str(Path(__file__).resolve().parent
             / "campaign_scenarios_helper.py")


def toy_spec(**overrides):
    base = dict(name="toy", scenario="toy_stats",
                grid={"n": [50, 60], "scale": [1.0, 2.0]},
                seeds=(7, 8), fixed={}, modules=(),
                module_paths=(HELPER,))
    base.update(overrides)
    return SweepSpec(**base)


# ---------------------------------------------------------------------------
# Spec enumeration and identity
# ---------------------------------------------------------------------------

class TestSweepSpec:
    def test_commit_order_is_grid_order_seeds_innermost(self):
        cells = list(toy_spec().cells())
        assert len(cells) == len(toy_spec()) == 8
        assert [c.index for c in cells] == list(range(8))
        # n varies slowest, then scale, then seed.
        assert [(dict(c.params)["n"], dict(c.params)["scale"], c.seed)
                for c in cells[:4]] == [
            (50, 1.0, 7), (50, 1.0, 8), (50, 2.0, 7), (50, 2.0, 8)]

    def test_fixed_params_reach_every_cell(self):
        spec = toy_spec(grid={"n": [50]}, fixed={"scale": 3.0},
                        seeds=(7,))
        (cell,) = list(spec.cells())
        assert dict(cell.params) == {"n": 50, "scale": 3.0}

    def test_cell_id_stable_and_content_addressed(self):
        a, b = list(toy_spec().cells())[:2], list(toy_spec().cells())[:2]
        assert [c.cell_id for c in a] == [c.cell_id for c in b]
        # Different seed => different id at the same index.
        assert a[0].cell_id != a[1].cell_id.replace("0001", "0000")

    def test_verbatim_seeds_by_default(self):
        seeds = {c.seed for c in toy_spec().cells()}
        assert seeds == {7, 8}

    def test_derived_seeds_are_distinct_per_cell(self):
        spec = toy_spec(derive_cell_seeds=True, seeds=(7,))
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [c.seed for c in spec.cells()]  # stable

    def test_derive_seed_is_pure(self):
        assert derive_seed(1, "x", 2.0) == derive_seed(1, "x", 2.0)
        assert derive_seed(1, "x", 2.0) != derive_seed(2, "x", 2.0)
        assert 0 <= derive_seed(0) < 2 ** 31

    def test_restrict_replaces_axes_and_seeds(self):
        spec = toy_spec().restrict(seeds=(7,), n=[50])
        assert len(spec) == 2
        with pytest.raises(ValueError, match="unknown grid axes"):
            toy_spec().restrict(bogus=[1])

    def test_dict_roundtrip(self):
        spec = toy_spec(derive_cell_seeds=True)
        clone = SweepSpec.from_dict(spec.to_dict())
        assert [c.cell_id for c in clone.cells()] \
            == [c.cell_id for c in spec.cells()]

    def test_rejects_overlapping_and_empty_axes(self):
        with pytest.raises(ValueError, match="both swept and fixed"):
            toy_spec(fixed={"n": 1})
        with pytest.raises(ValueError, match="has no values"):
            toy_spec(grid={"n": []})
        with pytest.raises(ValueError, match="at least one seed"):
            toy_spec(seeds=())

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            SweepSpec.from_dict({"name": "x", "scenario": "y",
                                 "typo": 1})


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_sweeps_are_listed(self):
        names = list_sweeps()
        for expected in ("fig15", "fig15-micro", "fig16", "table1",
                         "failure-recovery", "fig12"):
            assert expected in names

    def test_get_sweep_unknown_name(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            get_sweep("nope")

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("never-registered")

    def test_duplicate_registration_is_rejected(self):
        @scenario("test_dup_scenario")
        def first(seed):
            return None

        with pytest.raises(ValueError, match="already registered"):
            @scenario("test_dup_scenario")
            def second(seed):
                return None

        # Re-registering the same function is an idempotent no-op.
        scenario("test_dup_scenario")(first)

    def test_same_definition_reimported_is_tolerated(self, tmp_path):
        # A scenario script executes under several module names
        # (__main__, __mp_main__ in spawn workers, the runner's
        # by-path import); each run makes a fresh function object for
        # one source definition, which must not count as a conflict.
        import importlib.util

        source = tmp_path / "dup_module.py"
        source.write_text(
            "from repro.campaign.registry import scenario\n\n\n"
            "@scenario('test_reimported_scenario')\n"
            "def cell(seed):\n"
            "    return seed\n")

        def load(as_name):
            spec = importlib.util.spec_from_file_location(
                as_name, str(source))
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module

        first = load("test_dup_first")
        load("test_dup_second")  # same file, new function object: ok
        # The first registration wins, so earlier resolutions stay valid.
        assert get_scenario("test_reimported_scenario") is first.cell


# ---------------------------------------------------------------------------
# Merge reductions
# ---------------------------------------------------------------------------

class TestMerge:
    def test_sum_counters_recurses_and_unions(self):
        merged = sum_counters([
            {"a": 1, "nested": {"x": 2}, "label": "s"},
            {"a": 2, "b": 5, "nested": {"x": 3, "y": 1}, "label": "s"},
        ])
        assert merged == {"a": 3, "b": 5,
                          "nested": {"x": 5, "y": 1}, "label": "s"}

    def test_sum_counters_skips_none(self):
        assert sum_counters([{"m": None}, {"m": 2.5}]) == {"m": 2.5}

    def test_sum_counters_rejects_conflicting_labels(self):
        with pytest.raises(ValueError, match="differs across cells"):
            sum_counters([{"label": "a"}, {"label": "b"}])

    def test_pooled_stats(self):
        pooled = pool_values([[1.0, 3.0], [], [2.0]])
        assert pooled == [1.0, 3.0, 2.0]
        stats = pooled_stats(pooled)
        assert stats == {"count": 3, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert pooled_stats([])["mean"] is None

    def test_merge_bucket_rows_weights_by_count(self):
        part_a = [{"start": 0.0, "count": 1, "mean": 2.0, "min": 2.0,
                   "max": 2.0, "last": 2.0}]
        part_b = [{"start": 0.0, "count": 3, "mean": 6.0, "min": 1.0,
                   "max": 9.0, "last": 5.0},
                  {"start": 1.0, "count": 1, "mean": 4.0, "min": 4.0,
                   "max": 4.0, "last": 4.0}]
        merged = merge_bucket_rows([part_a, part_b])
        assert merged[0] == {"start": 0.0, "count": 4, "mean": 5.0,
                             "min": 1.0, "max": 9.0, "last": 5.0}
        assert merged[1]["start"] == 1.0


# ---------------------------------------------------------------------------
# Runner: execution, artifacts, determinism
# ---------------------------------------------------------------------------

class TestRunner:
    def test_serial_in_memory_run(self):
        result = run_campaign(toy_spec())
        assert not result.partial and result.executed == 8
        assert all(isinstance(r, dict) for r in result.results())
        one = result.get(n=50, scale=2.0, seed=8)
        assert one["n"] == 50

    def test_get_requires_unique_match(self):
        result = run_campaign(toy_spec())
        with pytest.raises(KeyError, match="2 cells match"):
            result.get(n=50, scale=2.0)
        with pytest.raises(KeyError, match="0 cells match"):
            result.get(n=999, seed=7)

    def test_out_dir_layout_and_artifacts(self, tmp_path):
        out = tmp_path / "camp"
        result = run_campaign(toy_spec(), out=out)
        assert (out / "spec.json").is_file()
        manifest = json.loads((out / "manifest.json").read_text())
        assert len(manifest["cells"]) == 8
        for entry, record in zip(manifest["cells"], result.records):
            assert entry["id"] == record.cell.cell_id
            assert (out / entry["checkpoint"]).is_file()
            (artifact,) = entry["artifacts"]
            assert artifact == (f"artifacts/{entry['id']}/values.csv")
            assert (out / artifact).is_file()
        merged = json.loads((out / "merged.json").read_text())
        assert [c["result"] for c in merged["cells"]] == result.results()

    def test_two_workers_byte_identical_to_serial(self, tmp_path):
        run_campaign(toy_spec(), out=tmp_path / "serial", workers=0)
        run_campaign(toy_spec(), out=tmp_path / "par", workers=2)
        for name in ("manifest.json", "merged.json"):
            assert (tmp_path / "serial" / name).read_bytes() \
                == (tmp_path / "par" / name).read_bytes(), name

    def test_crash_then_resume_matches_uninterrupted(self, tmp_path):
        reference = tmp_path / "ref"
        run_campaign(toy_spec(), out=reference)
        crashed = tmp_path / "crashed"
        partial = run_campaign(toy_spec(), out=crashed, max_cells=3)
        assert partial.partial and partial.executed == 3
        assert not (crashed / "manifest.json").exists()
        resumed = run_campaign(toy_spec(), out=crashed, workers=2,
                               resume=True)
        assert resumed.executed == 5 and not resumed.partial
        for name in ("manifest.json", "merged.json"):
            assert (crashed / name).read_bytes() \
                == (reference / name).read_bytes(), name

    def test_resume_without_flag_reruns_everything(self, tmp_path):
        out = tmp_path / "camp"
        run_campaign(toy_spec(), out=out, max_cells=3)
        rerun = run_campaign(toy_spec(), out=out)
        assert rerun.executed == 8

    def test_stale_checkpoints_are_invalidated_by_spec_edits(
            self, tmp_path):
        out = tmp_path / "camp"
        run_campaign(toy_spec(), out=out)
        edited = toy_spec(grid={"n": [50, 61], "scale": [1.0, 2.0]})
        resumed = run_campaign(edited, out=out, resume=True)
        # The n=50 half is reusable; the n=61 half has new cell ids.
        assert resumed.executed == 4

    def test_torn_checkpoint_is_rerun(self, tmp_path):
        out = tmp_path / "camp"
        run_campaign(toy_spec(), out=out, max_cells=2)
        victim = sorted((out / "cells").iterdir())[0]
        victim.write_text('{"id": "torn',  encoding="utf-8")
        resumed = run_campaign(toy_spec(), out=out, resume=True)
        assert resumed.executed == 7

    def test_cell_failure_names_the_cell(self):
        spec = toy_spec(scenario="toy_boom",
                        grid={"n": [1, 13], "scale": [1.0]}, seeds=(0,))
        with pytest.raises(RuntimeError, match=r"toy_boom\(n=13"):
            run_campaign(spec)

    def test_max_cells_requires_out_dir(self):
        with pytest.raises(ValueError, match="max_cells"):
            run_campaign(toy_spec(), max_cells=1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(toy_spec(), workers=-1)

    def test_progress_callback_sees_every_cell(self, tmp_path):
        lines = []
        run_campaign(toy_spec(), out=tmp_path / "c",
                     progress=lines.append)
        assert len(lines) == 8

    def test_builtin_micro_sweep_runs_serially(self):
        spec = get_sweep("fig15-micro").restrict(
            load=["moderate"], policy=["silo"])
        result = run_campaign(spec)
        (record,) = result.records
        assert 0.0 < record.result["total"] <= 1.0


class TestCellTimeout:
    """Satellite: per-cell wall-clock budgets keep campaigns live."""

    def sleeper_spec(self, **overrides):
        base = dict(name="sleepy", scenario="toy_sleeper",
                    grid={"duration": [0.0, 30.0]}, seeds=(1,),
                    fixed={}, modules=(), module_paths=(HELPER,))
        base.update(overrides)
        return SweepSpec(**base)

    def test_serial_timeout_fails_cell_and_completes(self, tmp_path):
        out = tmp_path / "c"
        result = run_campaign(self.sleeper_spec(), out=out,
                              cell_timeout=1.0)
        # The campaign completed (no hang): both cells executed, the
        # sleeper failed, the run is partial with no merge outputs.
        assert result.executed == 2
        assert result.partial
        (failed,) = result.failed
        assert "timeout" in failed.error
        assert dict(failed.cell.params)["duration"] == 30.0
        assert len(result.records) == 1
        # The fast cell checkpointed; the failed one did not, so a
        # resume would retry exactly it.
        assert len(list((out / "cells").glob("*.json"))) == 1
        assert not (out / "merged.json").exists()
        assert not (out / "manifest.json").exists()

    def test_timeout_not_triggered_leaves_run_complete(self, tmp_path):
        spec = self.sleeper_spec(grid={"duration": [0.0, 0.01]})
        result = run_campaign(spec, out=tmp_path / "c",
                              cell_timeout=30.0)
        assert not result.partial and not result.failed
        assert (tmp_path / "c" / "merged.json").exists()

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            run_campaign(self.sleeper_spec(), cell_timeout=0.0)

    def test_worker_pool_timeout_cli_exits_nonzero(self, tmp_path):
        """A hung worker cell fails via the CLI too -- subprocess, so
        SIGALRM delivery inside spawned pool workers is covered."""
        import os
        import subprocess
        import sys
        repo = Path(__file__).resolve().parent.parent
        spec_file = tmp_path / "sleepy.json"
        spec_file.write_text(json.dumps(
            self.sleeper_spec(grid={"duration": [0.0, 30.0]},
                              seeds=(1, 2)).to_dict()))
        out = tmp_path / "c"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(repo / "src"), env.get("PYTHONPATH")) if p)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "campaign",
             "--spec", str(spec_file), "--out", str(out),
             "--workers", "2", "--cell-timeout", "2"],
            capture_output=True, text=True, timeout=120, env=env,
            cwd=repo)
        assert proc.returncode == 1, proc.stderr
        assert "FAILED" in proc.stderr
        assert "timeout" in proc.stderr
        # The fast cells checkpointed; the sleepers did not.
        assert len(list((out / "cells").glob("*.json"))) == 2
        assert not (out / "merged.json").exists()
