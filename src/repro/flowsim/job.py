"""Tenant jobs and their flows for the fluid simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.tenant import Placement, TenantRequest

#: Flows count as drained below this many bytes: sub-microbyte residue
#: from rate * dt accounting, far below one packet, never real payload.
#: Must match ``repro.flowsim.sim._DONE_EPS``.
_DONE_EPS = 1e-6


@dataclass
class FlowState:
    """One fluid flow: a VM pair moving ``remaining`` bytes.

    ``links`` are the port ids the flow crosses (used both for max-min
    sharing and utilization accounting); ``rate`` is the current fluid
    rate, re-assigned by the simulator's sharing policy.
    """

    tenant_id: int
    src_vm: int
    dst_vm: int
    links: Tuple[int, ...]
    remaining: float
    rate: float = 0.0
    #: The reserved (hose-split) rate assigned at admission, before any
    #: fault capping; 0 for flows whose rate is dynamically shared.
    nominal_rate: float = 0.0
    #: Simulator bookkeeping: virtual time ``remaining`` was last brought
    #: up to date (flows advance lazily between rate changes).
    updated: float = 0.0
    #: Simulator bookkeeping: bumped on every rate change to invalidate
    #: finish events scheduled under the old rate.
    epoch: int = 0

    @property
    def done(self) -> bool:
        """Whether the flow has delivered all its bytes."""
        return self.remaining <= _DONE_EPS


@dataclass
class TenantJob:
    """A tenant's unit of work: flows plus a minimum compute time.

    The job (and the tenant) finishes when every flow has drained *and*
    the compute time has elapsed; the tenant then departs and frees its
    slots and reservations (section 6.3's model).
    """

    request: TenantRequest
    placement: Placement
    flows: List[FlowState]
    compute_time: float
    arrival: float
    finish: Optional[float] = None

    @property
    def tenant_id(self) -> int:
        """The owning tenant's id."""
        return self.request.tenant_id

    @property
    def network_done(self) -> bool:
        """Whether every flow of the job has finished."""
        return all(flow.done for flow in self.flows)

    def total_bytes(self) -> float:
        """Bytes still to deliver across the job's flows."""
        return sum(f.remaining for f in self.flows)

    @property
    def duration(self) -> Optional[float]:
        """Arrival-to-finish duration, or None while running."""
        if self.finish is None:
            return None
        return self.finish - self.arrival
