"""Table 1: % messages later than their guarantee vs bandwidth and burst.

A synthetic application sends Poisson-arriving messages of size ``M``
between two VMs with average bandwidth requirement ``B``.  The guarantee
columns scale the *guaranteed* bandwidth from ``B`` to ``3B``; the rows
scale the burst allowance from ``M`` to ``9M``.  A message is late when
its latency exceeds the tenant-visible bound of section 4.1.

Message latency here is what the token-bucket hierarchy alone imposes
(transmission through the shaper + the delay guarantee), exactly the
coupling Table 1 isolates; network queueing is bounded separately by
placement.

Expected shape: ~99% late with (M, B); sharply decreasing along both
axes; ~0.1% late around burst 7M / bandwidth 1.8B (the paper's headline
cell); ~0 in the bottom-right corner.
"""

import pytest

from repro.campaign import get_sweep, run_campaign
from repro.campaign.scenarios import (TABLE1_BANDWIDTH_MULTIPLIERS,
                                      TABLE1_BURST_MULTIPLIERS)

from conftest import print_table, run_once

#: The paper's grid, defined once in the registered ``table1`` sweep.
#: Per-cell seeds are spec-derived (``derive_cell_seeds=True``) -- the
#: spec replaces the ad-hoc ``hash(...)`` seeding this bench once used,
#: which depended on the interpreter's integer hashing.
BANDWIDTH_MULTIPLIERS = tuple(TABLE1_BANDWIDTH_MULTIPLIERS)
BURST_MULTIPLIERS = tuple(TABLE1_BURST_MULTIPLIERS)


def compute_table():
    campaign = run_campaign(get_sweep("table1"))
    rows = []
    for burst_mult in BURST_MULTIPLIERS:
        row = [f"{burst_mult}M"]
        for bw_mult in BANDWIDTH_MULTIPLIERS:
            fraction = campaign.get(burst_mult=burst_mult,
                                    bw_mult=bw_mult)["late_fraction"]
            row.append(f"{100 * fraction:.2f}")
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_burst_allowance(benchmark):
    rows = run_once(benchmark, compute_table)
    header = ["burst\\bw"] + [f"{m:g}B" for m in BANDWIDTH_MULTIPLIERS]
    print_table("Table 1: % messages later than their guarantee", header,
                rows)

    values = {(r, c): float(rows[r][c + 1])
              for r in range(len(BURST_MULTIPLIERS))
              for c in range(len(BANDWIDTH_MULTIPLIERS))}
    # Shape assertions, in the paper's terms:
    # (M, B) leaves almost every message late, and the whole first
    # column stays bad: bandwidth equal to the average demand cannot
    # absorb Poisson bursts no matter the allowance (paper: 98-99%).
    assert values[(0, 0)] > 80.0
    for r in range(len(BURST_MULTIPLIERS)):
        assert values[(r, 0)] > 50.0
    # With any bandwidth headroom, more burst monotonically helps.
    for c in range(1, len(BANDWIDTH_MULTIPLIERS)):
        for r in range(len(BURST_MULTIPLIERS) - 1):
            assert values[(r + 1, c)] <= values[(r, c)] + 2.0
    # More guaranteed bandwidth helps along every row.
    for r in range(len(BURST_MULTIPLIERS)):
        assert values[(r, 1)] <= values[(r, 0)] + 2.0
        assert values[(r, 5)] <= values[(r, 1)] + 2.0
    # Generous burst + headroom makes lateness rare (paper: 0.09% at
    # 7M / 1.8B).
    assert values[(3, 2)] < 2.0     # 7M, 1.8B
    assert values[(4, 5)] < 0.5     # 9M, 3B
