"""Observability hooks in the packet simulator.

The contract under test: with a sink attached every packet/flow lifecycle
step emits a typed event with consistent bookkeeping, and with no sink
attached behaviour is identical (the hooks are pure observers).
"""

import random

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.obs import RingBufferSink, TimeSeries
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import EpochBurstApp
from repro.phynet.engine import Simulator
from repro.phynet.packet import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_GUARANTEED,
    Packet,
)
from repro.phynet.port import OutputPort
from repro.topology import TreeTopology
from repro.workloads import Fixed


def packet(size=1500.0, priority=PRIORITY_GUARANTEED):
    return Packet(src=0, dst=1, size=size, route=[], priority=priority)


def small_topo():
    return TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=6, link_rate=units.gbps(10))


class TestPortEvents:
    def test_enqueue_and_tx_events(self):
        sim = Simulator()
        sink = RingBufferSink()
        port = OutputPort(sim, "t", units.gbps(10), 1e6, tracer=sink)
        port.enqueue(packet())
        port.enqueue(packet())
        sim.run()
        enq = sink.of_kind("pkt.enqueue")
        tx = sink.of_kind("pkt.tx")
        assert len(enq) == 2 and len(tx) == 2
        assert all(e.port == "t" for e in enq)
        # Enqueue depth includes the packet itself; tx depth excludes it.
        assert enq[0].queued_bytes == 1500.0
        assert tx[-1].queued_bytes == 0.0

    def test_tail_drop_event(self):
        sim = Simulator()
        sink = RingBufferSink()
        port = OutputPort(sim, "t", units.gbps(10), 3000.0, tracer=sink)
        for _ in range(5):
            port.enqueue(packet())
        drops = sink.of_kind("pkt.drop")
        assert drops
        assert all(d.reason == "tail" for d in drops)
        assert len(drops) == port.stats.drops

    def test_pushout_drop_event(self):
        sim = Simulator()
        sink = RingBufferSink()
        port = OutputPort(sim, "t", units.gbps(10), 3000.0, tracer=sink)
        port.enqueue(packet())  # takes the wire
        port.enqueue(packet(priority=PRIORITY_BEST_EFFORT))
        port.enqueue(packet(priority=PRIORITY_BEST_EFFORT))
        port.enqueue(packet())  # evicts one best-effort packet
        pushed = [d for d in sink.of_kind("pkt.drop")
                  if d.reason == "pushout"]
        assert len(pushed) == port.stats.pushouts == 1
        assert pushed[0].priority == PRIORITY_BEST_EFFORT

    def test_mark_event(self):
        sim = Simulator()
        sink = RingBufferSink()
        port = OutputPort(sim, "t", units.gbps(10), 1e6,
                          ecn_threshold=1000.0, tracer=sink)
        port.enqueue(packet())
        marks = sink.of_kind("pkt.mark")
        assert len(marks) == 1
        assert marks[0].queue == "queue"
        assert marks[0].queued_bytes == 1500.0

    def test_depth_series_tracks_queue(self):
        sim = Simulator()
        port = OutputPort(sim, "t", units.gbps(10), 1e6)
        port.depth_series = TimeSeries(name="t", interval=1e-6)
        for _ in range(4):
            port.enqueue(packet())
        sim.run()
        buckets = port.depth_series.buckets()
        assert buckets
        assert max(b.vmax for b in buckets) == 4500.0  # 3 queued behind tx
        assert buckets[-1].last == 0.0  # drained by the end

    def test_tracing_does_not_change_behaviour(self):
        def run(tracer):
            sim = Simulator()
            port = OutputPort(sim, "t", units.gbps(10), 4500.0,
                              ecn_threshold=2000.0, tracer=tracer)
            for _ in range(6):
                port.enqueue(packet())
            sim.run()
            s = port.stats
            return (s.tx_packets, s.drops, s.ecn_marks,
                    s.max_queue_bytes, sim.now)

        assert run(None) == run(RingBufferSink())


class TestNetworkEvents:
    def test_flow_lifecycle_events(self):
        sink = RingBufferSink()
        net = PacketNetwork(small_topo(), tracer=sink)
        metrics = MetricsCollector(tracer=sink)
        for i in range(3):
            net.add_vm(i, 1, i)
        app = EpochBurstApp(net, metrics, 1, [0, 1, 2],
                            Fixed(10 * units.KB), epoch=units.msec(1),
                            rng=random.Random(7))
        app.start(phase=0.0)
        net.sim.run(until=0.005)
        starts = sink.of_kind("flow.start")
        finishes = sink.of_kind("flow.finish")
        assert len(starts) == app.messages_sent
        assert finishes
        assert len(finishes) == len(metrics.completed())
        fin = finishes[0]
        assert fin.tenant_id == 1
        assert fin.latency > 0
        # The trace alone reconstructs the metrics collector's latencies.
        assert (sorted(f.latency for f in finishes)
                == sorted(metrics.latencies()))

    def test_packet_events_cross_real_ports(self):
        sink = RingBufferSink()
        net = PacketNetwork(small_topo(), tracer=sink)
        metrics = MetricsCollector()
        net.add_vm(0, 1, 0)
        net.add_vm(1, 1, 1)
        flow = net.transport(0, 1)
        flow.send_message(metrics.new_message(1, 0, 1, 30000.0, 0.0))
        net.sim.run(until=0.01)
        ports = {e.port for e in sink.of_kind("pkt.tx")}
        assert any(p.startswith("nic") for p in ports)

    def test_monitor_queues_attaches_series(self):
        net = PacketNetwork(small_topo())
        series = net.monitor_queues(interval=10 * units.MICROS)
        assert set(series) == {p.name for p in net.ports.values()}
        metrics = MetricsCollector()
        net.add_vm(0, 1, 0)
        net.add_vm(1, 1, 1)
        flow = net.transport(0, 1)
        flow.send_message(metrics.new_message(1, 0, 1, 50000.0, 0.0))
        net.sim.run(until=0.01)
        assert any(s.count > 0 for s in series.values())
