"""Guarantee inference from measured traffic (the paper's Cicada hook).

Section 4.1: "Tools like Cicada allow tenants to automatically determine
their bandwidth guarantees."  This module implements the core of such a
tool over our trace format: from a measured packet/message trace it
extracts the *empirical arrival envelope* -- for each candidate sustained
rate ``r``, the smallest burst ``b(r)`` such that the trace conforms to
``r*t + b(r)`` -- and turns a chosen operating point into a
:class:`~repro.core.guarantees.NetworkGuarantee` ready for admission.

``b(r)`` is computed with the same linear scan as the conformance checker
(:mod:`repro.netcalc.trace`): ``b(r) = max over windows of
(bytes_sent - r * window)``.  ``b`` is non-increasing and convex in
``r``, so a small rate grid gives a faithful envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.guarantees import NetworkGuarantee
from repro.netcalc.curves import Curve


def required_burst(trace: Sequence[Tuple[float, float]],
                   rate: float) -> float:
    """Smallest burst ``b`` with the trace conforming to ``rate*t + b``.

    Equals ``max_w (bytes(w) - rate * len(w))`` over all windows ``w``;
    at least the largest single packet.
    """
    if rate < 0:
        raise ValueError("rate must be >= 0")
    best_start = 0.0
    required = 0.0
    cumulative = 0.0
    previous_cumulative = 0.0
    for time, size in trace:
        if size <= 0:
            raise ValueError("packet sizes must be positive")
        start_term = previous_cumulative - rate * time
        if start_term < best_start:
            best_start = start_term
        cumulative += size
        required = max(required, cumulative - rate * time - best_start)
        previous_cumulative = cumulative
        required = max(required, size)
    return required


@dataclass(frozen=True)
class EnvelopePoint:
    """One (rate, burst) operating point of the empirical envelope."""

    rate: float
    burst: float


def empirical_envelope(trace: Sequence[Tuple[float, float]],
                       rates: Sequence[float]) -> List[EnvelopePoint]:
    """The burst required at each candidate sustained rate."""
    if not rates:
        raise ValueError("need at least one candidate rate")
    ordered = sorted(set(rates))
    return [EnvelopePoint(rate=r, burst=required_burst(trace, r))
            for r in ordered]


def envelope_curve(trace: Sequence[Tuple[float, float]],
                   rates: Sequence[float]) -> Curve:
    """A concave arrival curve upper-bounding the trace.

    The minimum of the per-rate token buckets; by construction the trace
    conforms to it, and it is the tightest such curve on the rate grid.
    """
    points = empirical_envelope(trace, rates)
    return Curve.from_pieces([(p.rate, p.burst) for p in points])


def infer_guarantee(trace: Sequence[Tuple[float, float]],
                    delay: Optional[float] = None,
                    peak_rate: Optional[float] = None,
                    headroom: float = 1.2,
                    max_burst: Optional[float] = None
                    ) -> NetworkGuarantee:
    """Pick a ``{B, S}`` operating point for a measured workload.

    The sustained rate is the trace's long-run average times
    ``headroom`` (Table 1's lesson: guaranteeing the bare average leaves
    almost every message late); the burst is whatever that rate requires
    to cover the trace, optionally capped at ``max_burst`` (in which case
    the rate is raised until the cap suffices).
    """
    if not trace:
        raise ValueError("cannot infer a guarantee from an empty trace")
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    duration = trace[-1][0] - trace[0][0]
    total = sum(size for _, size in trace)
    if duration <= 0:
        raise ValueError("trace must span a positive duration")
    average = total / duration
    rate = headroom * average
    burst = required_burst(trace, rate)
    if max_burst is not None and burst > max_burst:
        # Walk the convex trade-off: more rate, less burst.
        low, high = rate, max(rate * 2, 1.0)
        while required_burst(trace, high) > max_burst:
            high *= 2
            if high > 1e15:
                raise ValueError("max_burst unattainable for this trace")
        for _ in range(60):
            mid = (low + high) / 2
            if required_burst(trace, mid) > max_burst:
                low = mid
            else:
                high = mid
        rate = high
        burst = min(required_burst(trace, rate), max_burst)
    if peak_rate is not None:
        peak_rate = max(peak_rate, rate)
    return NetworkGuarantee(bandwidth=rate, burst=burst, delay=delay,
                            peak_rate=peak_rate)
