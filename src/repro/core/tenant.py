"""Tenant requests and placement results."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.guarantees import NetworkGuarantee

_tenant_ids = itertools.count(1)


def reset_tenant_ids(start: int = 1) -> None:
    """Restart the process-global tenant-id counter at ``start``.

    Auto-assigned ids (``TenantRequest`` without an explicit
    ``tenant_id``) come from one process-global counter, so the ids a
    scenario sees depend on how many tenants the process created before
    it.  The campaign runner calls this before every cell so a cell's
    output is byte-identical whether it runs first in a fresh worker
    process or hundredth in a serial in-process sweep.  Never call it
    while a placement manager still holds live tenants: recycled ids
    would collide inside that manager.
    """
    global _tenant_ids
    _tenant_ids = itertools.count(start)


class TenantClass(enum.Enum):
    """The two tenant classes of the paper's evaluation (Table 3).

    ``CLASS_A``: delay-sensitive, needs bandwidth + delay + burst
    guarantees (OLDI-style, all-to-one traffic).
    ``CLASS_B``: bandwidth-sensitive only (data-parallel, all-to-all).
    ``BEST_EFFORT``: no guarantees at all; carried at low switch priority
    on residual capacity (section 4.4).
    """

    CLASS_A = "class-a"
    CLASS_B = "class-b"
    BEST_EFFORT = "best-effort"


@dataclass
class TenantRequest:
    """A tenant's admission request: ``N`` VMs with a common guarantee.

    Silo's pricing model is per-tenant: all of a tenant's VMs share the
    same ``{B, S, d, Bmax}`` (section 4.1).  ``guarantee`` is ``None`` only
    for best-effort tenants.
    """

    n_vms: int
    guarantee: Optional[NetworkGuarantee]
    tenant_class: TenantClass = TenantClass.CLASS_B
    name: Optional[str] = None
    tenant_id: int = field(default_factory=lambda: next(_tenant_ids))

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ValueError("a tenant needs at least one VM")
        if self.guarantee is None and self.tenant_class is not TenantClass.BEST_EFFORT:
            raise ValueError("only best-effort tenants may omit a guarantee")
        if self.name is None:
            self.name = f"tenant-{self.tenant_id}"

    @property
    def wants_delay(self) -> bool:
        """Whether this tenant asked for a delay guarantee."""
        return self.guarantee is not None and self.guarantee.wants_delay


@dataclass
class Placement:
    """Where an admitted tenant's VMs landed.

    ``vm_servers[i]`` is the server id hosting the tenant's ``i``-th VM.
    """

    request: TenantRequest
    vm_servers: List[int]

    def __post_init__(self) -> None:
        if len(self.vm_servers) != self.request.n_vms:
            raise ValueError(
                f"placement has {len(self.vm_servers)} VM slots for a "
                f"request of {self.request.n_vms} VMs")

    @property
    def tenant_id(self) -> int:
        """The placed tenant's id."""
        return self.request.tenant_id

    def vms_per_server(self) -> Dict[int, int]:
        """Map server id -> number of this tenant's VMs hosted there."""
        counts: Dict[int, int] = {}
        for server in self.vm_servers:
            counts[server] = counts.get(server, 0) + 1
        return counts

    def server_pairs(self) -> List[Tuple[int, int]]:
        """Distinct ordered server pairs with tenant traffic between them."""
        servers = sorted(self.vms_per_server())
        return [(a, b) for a in servers for b in servers if a != b]
