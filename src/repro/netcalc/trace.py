"""Trace conformance: does an observed packet stream obey a curve?

Silo's whole analysis rests on sources conforming to their arrival
curves; this module closes the loop by checking *measured* traffic (lists
of ``(timestamp, bytes)``) against a :class:`~repro.netcalc.curves.Curve`.
Used in tests to prove the shaper's output obeys the curves the placement
assumed, and offered as a library tool for validating real traces.

The check is exact for piecewise-linear concave curves: over every window
``[t_i, t_j]`` the bytes sent must satisfy ``sent <= A(t_j - t_i)``; for
a curve with pieces ``min_k (r_k * t + b_k)`` this is equivalent to, for
each piece, a running-maximum scan in O(pieces * n).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.netcalc.curves import Curve


@dataclass(frozen=True)
class Violation:
    """One window over which a trace exceeded its curve."""

    start: float
    end: float
    sent: float
    allowed: float

    @property
    def excess(self) -> float:
        """Bytes sent beyond the envelope allowance."""
        return self.sent - self.allowed


def check_conformance(trace: Sequence[Tuple[float, float]],
                      curve: Curve,
                      tolerance: float = 1e-6) -> Optional[Violation]:
    """Return the worst violation, or ``None`` when the trace conforms.

    ``trace`` is a time-ordered sequence of ``(departure_time, bytes)``.
    A packet is counted entirely at its departure instant (the convention
    the token-bucket stamper uses), so a conforming shaper output checks
    clean with ``tolerance`` covering float error only.

    For each affine piece ``r*t + b``, conformance over every window
    requires ``cum[j] - cum[i-1] <= r * (t_j - t_i) + b``, i.e.
    ``(cum[j] - r * t_j) - (cum[i-1] - r * t_i) <= b``; scanning with a
    running maximum of ``cum[i-1] - r * t_i`` is linear time.
    """
    if not trace:
        return None
    times = [t for t, _ in trace]
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError("trace timestamps must be non-decreasing")

    cumulative: List[float] = []
    total = 0.0
    for _, size in trace:
        if size <= 0:
            raise ValueError("packet sizes must be positive")
        total += size
        cumulative.append(total)

    worst: Optional[Violation] = None
    for piece in curve.pieces:
        rate, burst = piece.rate, piece.burst
        # The excess of window [t_i, t_j] is
        #   (cum[j] - r t_j) - (cum[i-1] - r t_i) - b,
        # so the worst start for each end j is the running *minimum* of
        # the start term.
        best_start = math.inf
        best_start_idx = 0
        for j in range(len(trace)):
            start_term = (cumulative[j - 1] if j else 0.0) \
                - rate * times[j]
            if start_term < best_start:
                best_start = start_term
                best_start_idx = j
            sent_term = cumulative[j] - rate * times[j]
            excess = sent_term - best_start - burst
            if excess > tolerance:
                start = times[best_start_idx]
                sent = cumulative[j] - (cumulative[best_start_idx - 1]
                                        if best_start_idx else 0.0)
                window = times[j] - start
                violation = Violation(start=start, end=times[j],
                                      sent=sent,
                                      allowed=rate * window + burst)
                if worst is None or violation.excess > worst.excess:
                    worst = violation
    return worst


def conforms(trace: Sequence[Tuple[float, float]], curve: Curve,
             tolerance: float = 1e-6) -> bool:
    """Convenience wrapper: ``True`` when no window violates the curve."""
    return check_conformance(trace, curve, tolerance) is None
