"""Tenant stream generation for the cluster simulator (section 6.3).

Tenants arrive as a Poisson process; half are class-A (all-to-one,
bandwidth + delay + burst guarantees) and half class-B (permutation-x,
bandwidth only), with per-tenant guarantees drawn around the Table 3 means
from exponential distributions, as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.workloads.patterns import all_to_one_pairs, permutation_pairs


@dataclass
class WorkloadConfig:
    """Knobs for the tenant stream; defaults follow Table 3.

    ``permutation_x`` controls class-B traffic density (Fig. 16b);
    ``class_a_fraction`` is 0.5 in the paper's runs.
    """

    class_a_fraction: float = 0.5
    mean_vms: float = 8.0
    min_vms: int = 2
    max_vms: int = 32
    # Class-A guarantees (exponential around these means).
    a_bandwidth: float = units.gbps(0.25)
    a_burst: float = 15 * units.KB
    a_delay: float = 1000 * units.MICROS
    a_peak: float = units.gbps(1.0)
    # Class-B guarantees.
    b_bandwidth: float = units.gbps(2.0)
    b_burst: float = 1.5 * units.KB
    permutation_x: float = 1.0
    # Job shape.
    a_flow_bytes: float = 10 * units.MB
    b_flow_bytes: float = 250 * units.MB
    mean_compute_time: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.class_a_fraction <= 1.0:
            raise ValueError("class_a_fraction must be in [0, 1]")
        if self.min_vms < 2:
            raise ValueError("tenants need at least 2 VMs for flows")


@dataclass
class TenantArrival:
    """One tenant arrival: the request plus its job parameters."""

    time: float
    request: TenantRequest
    pairs: List[Tuple[int, int]]      # VM-index pairs carrying flows
    flow_bytes: float
    compute_time: float


class TenantWorkload:
    """Poisson tenant stream with the section 6.3 mix."""

    def __init__(self, config: WorkloadConfig, arrival_rate: float,
                 seed: int = 0):
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.config = config
        self.arrival_rate = arrival_rate
        self.rng = random.Random(seed)

    def _sample_vms(self) -> int:
        cfg = self.config
        n = int(round(self.rng.expovariate(1.0 / cfg.mean_vms)))
        return max(cfg.min_vms, min(cfg.max_vms, n))

    def _sample_request(self) -> Tuple[TenantRequest, List[Tuple[int, int]],
                                       float]:
        cfg = self.config
        n_vms = self._sample_vms()
        vm_indices = list(range(n_vms))
        if self.rng.random() < cfg.class_a_fraction:
            guarantee = NetworkGuarantee(
                bandwidth=min(4 * cfg.a_bandwidth,
                              max(0.25 * cfg.a_bandwidth,
                                  self.rng.expovariate(
                                      1.0 / cfg.a_bandwidth))),
                burst=max(units.MTU,
                          self.rng.expovariate(1.0 / cfg.a_burst)),
                delay=cfg.a_delay,
                peak_rate=None,
            )
            # Bmax must dominate the sampled bandwidth.
            guarantee = NetworkGuarantee(
                bandwidth=guarantee.bandwidth, burst=guarantee.burst,
                delay=cfg.a_delay,
                peak_rate=max(cfg.a_peak, guarantee.bandwidth))
            request = TenantRequest(n_vms=n_vms, guarantee=guarantee,
                                    tenant_class=TenantClass.CLASS_A)
            pairs = all_to_one_pairs(vm_indices)
            flow_bytes = cfg.a_flow_bytes
        else:
            # Exponential around the Table 3 mean, clipped to [0.25x, 4x]
            # so no tenant's reserved-rate job lasts unboundedly long.
            guarantee = NetworkGuarantee(
                bandwidth=min(4 * cfg.b_bandwidth,
                              max(0.25 * cfg.b_bandwidth,
                                  self.rng.expovariate(
                                      1.0 / cfg.b_bandwidth))),
                burst=max(units.MTU,
                          self.rng.expovariate(1.0 / cfg.b_burst)),
                delay=None, peak_rate=None)
            request = TenantRequest(n_vms=n_vms, guarantee=guarantee,
                                    tenant_class=TenantClass.CLASS_B)
            pairs = permutation_pairs(vm_indices, cfg.permutation_x,
                                      self.rng)
            if not pairs:
                pairs = [(0, 1)]
            flow_bytes = cfg.b_flow_bytes
        return request, pairs, flow_bytes

    def arrivals(self, until: float) -> Iterator[TenantArrival]:
        """Generate arrivals up to virtual time ``until``."""
        now = 0.0
        while True:
            now += self.rng.expovariate(self.arrival_rate)
            if now >= until:
                return
            request, pairs, flow_bytes = self._sample_request()
            compute = self.rng.expovariate(
                1.0 / self.config.mean_compute_time)
            yield TenantArrival(time=now, request=request, pairs=pairs,
                                flow_bytes=flow_bytes,
                                compute_time=compute)

    def expected_holding_time(self) -> float:
        """Rough mean tenant lifetime, for choosing an arrival rate.

        Network time is estimated from the reserved-rate model (per-flow
        hose share); the job lasts the max of network and compute, which
        for exponentials we approximate by their sum minus the product
        mean -- good enough for occupancy targeting, which benchmarks
        calibrate empirically anyway.
        """
        cfg = self.config
        a_rate = cfg.a_bandwidth / max(cfg.mean_vms - 1, 1)
        a_net = cfg.a_flow_bytes / a_rate
        b_rate = cfg.b_bandwidth / max(cfg.permutation_x, 1.0)
        b_net = cfg.b_flow_bytes / b_rate
        net = (cfg.class_a_fraction * a_net
               + (1 - cfg.class_a_fraction) * b_net)
        return max(net, cfg.mean_compute_time) + 0.5 * min(
            net, cfg.mean_compute_time)

    @classmethod
    def for_occupancy(cls, config: WorkloadConfig, occupancy: float,
                      total_slots: int, seed: int = 0) -> "TenantWorkload":
        """Pick the Poisson rate targeting a mean slot occupancy."""
        if not 0 < occupancy < 1:
            raise ValueError("occupancy must be in (0, 1)")
        probe = cls(config, arrival_rate=1.0, seed=seed)
        holding = probe.expected_holding_time()
        rate = occupancy * total_slots / (config.mean_vms * holding)
        return cls(config, arrival_rate=rate, seed=seed)
