"""HULL: DCTCP congestion control against phantom-queue marking.

HULL (Alizadeh et al., NSDI 2012) trades a slice of bandwidth for
near-zero queues: each port runs a *phantom queue* -- a virtual counter
draining slightly slower than the link -- and marks ECN from the phantom,
so real queues stay almost empty.  The end-host algorithm is DCTCP; the
difference is entirely in how ports are configured, which
:class:`~repro.phynet.network.PacketNetwork` does when the transport
scheme is "hull".
"""

from __future__ import annotations

from repro.phynet.transport.dctcp import Dctcp

#: Phantom queue drain rate as a fraction of line rate (the HULL paper's
#: recommended ~5-10% bandwidth headroom).
HULL_DRAIN_FRACTION = 0.95
#: Phantom-queue marking threshold, bytes.
HULL_MARKING_THRESHOLD = 3_000


class HullTcp(Dctcp):
    """DCTCP endpoints; phantom-queue marking configured at the ports."""

    scheme = "hull"
