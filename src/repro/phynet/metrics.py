"""Measurement: message latency records and per-tenant summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.analysis.stats import percentile
from repro.obs.events import FlowStart

_NAN = float("nan")


@dataclass
class MessageRecord:
    """One application message's life, from first send to last delivery."""

    tenant_id: int
    src_vm: int
    dst_vm: int
    size: float
    start: float
    finish: Optional[float] = None
    rto_events: int = 0
    #: Optional callback invoked (with the record) on completion; lets
    #: applications chain work (next bulk chunk, RPC response) without
    #: polling.
    on_complete: Optional[Callable[["MessageRecord"], None]] = None

    @property
    def completed(self) -> bool:
        """Whether the message has finished."""
        return self.finish is not None

    @property
    def latency(self) -> float:
        """Send-to-finish latency of the message."""
        if self.finish is None:
            raise ValueError("message has not completed")
        return self.finish - self.start


class MetricsCollector:
    """Accumulates message records and computes the paper's metrics.

    Metrics defined as fractions or percentiles of the record set return
    ``NaN`` when the relevant set is empty: "no messages ran" must stay
    distinguishable from "every message met its bound".

    With a ``tracer`` attached, every :meth:`new_message` also emits a
    :class:`~repro.obs.events.FlowStart` event (the matching
    ``flow.finish`` is emitted by the transport on delivery).
    """

    def __init__(self, tracer=None) -> None:
        self.records: List[MessageRecord] = []
        self.tracer = tracer

    def new_message(self, tenant_id: int, src_vm: int, dst_vm: int,
                    size: float, start: float) -> MessageRecord:
        """Register a message send and return its record."""
        record = MessageRecord(tenant_id=tenant_id, src_vm=src_vm,
                               dst_vm=dst_vm, size=size, start=start)
        self.records.append(record)
        if self.tracer is not None:
            self.tracer.emit(FlowStart(
                time=start, tenant_id=tenant_id, src=src_vm, dst=dst_vm,
                size=size))
        return record

    # -- selections -------------------------------------------------------------

    def completed(self, tenant_id: Optional[int] = None
                  ) -> List[MessageRecord]:
        """Completed-message records (optionally one tenant's)."""
        return [r for r in self.records if r.completed
                and (tenant_id is None or r.tenant_id == tenant_id)]

    def latencies(self, tenant_id: Optional[int] = None) -> List[float]:
        """Completed-message latencies (optionally one tenant's)."""
        return [r.latency for r in self.completed(tenant_id)]

    def tenants(self) -> List[int]:
        """Tenant ids with at least one recorded message."""
        return sorted({r.tenant_id for r in self.records})

    # -- the paper's metrics ------------------------------------------------------

    def latency_percentile(self, q: float,
                           tenant_id: Optional[int] = None) -> float:
        """Latency percentile (``q`` in [0, 100]) over completed messages."""
        return percentile(self.latencies(tenant_id), q)

    def fraction_late(self, bound: float,
                      tenant_id: Optional[int] = None) -> float:
        """Fraction of messages later than ``bound`` (Table 1's metric).

        Messages that never completed within the simulation count as late.
        ``NaN`` when no messages were recorded at all -- 0.0 would read as
        "no SLO violations" for a tenant that never ran.
        """
        records = [r for r in self.records
                   if tenant_id is None or r.tenant_id == tenant_id]
        if not records:
            return _NAN
        late = sum(1 for r in records
                   if not r.completed or r.latency > bound)
        return late / len(records)

    def rto_message_fraction(self, tenant_id: int) -> float:
        """Fraction of a tenant's messages that suffered >= 1 RTO (Fig 13).

        ``NaN`` when the tenant recorded no messages.
        """
        records = [r for r in self.records if r.tenant_id == tenant_id]
        if not records:
            return _NAN
        hit = sum(1 for r in records if r.rto_events > 0)
        return hit / len(records)

    def outlier_class(self, tenant_id: int, estimate: float,
                      q: float = 99.0) -> float:
        """How far a tenant's ``q``-th percentile latency exceeds an estimate.

        Returns the ratio ``p_q / estimate`` (Table 4 counts tenants with
        ratio > 1, > 2 and > 8).  Incomplete messages are treated as
        having infinite latency; ``NaN`` when the tenant recorded no
        messages at all.
        """
        records = [r for r in self.records if r.tenant_id == tenant_id]
        if not records:
            return _NAN
        values = [r.latency if r.completed else float("inf")
                  for r in records]
        return percentile(values, q) / estimate

    # -- export -------------------------------------------------------------------

    def latency_rows(self) -> Iterable[Dict[str, Any]]:
        """One flat dict per completed message (CSV/JSON export)."""
        for r in self.records:
            if not r.completed:
                continue
            yield {"tenant_id": r.tenant_id, "src_vm": r.src_vm,
                   "dst_vm": r.dst_vm, "size": r.size, "start": r.start,
                   "finish": r.finish, "latency": r.latency,
                   "rto_events": r.rto_events}
